//! The bulk-synchronous-parallel execution engine.

use ebv_graph::VertexId;
use ebv_obs::{NoopRecorder, Phase, Recorder, SpanCtx};

use crate::error::{BspError, Result};
use crate::exchange::{self, MessagePlane};
use crate::program::{SubgraphContext, SubgraphProgram};
use crate::stats::{ExecutionStats, SuperstepStats, WorkerSuperstepStats};
use crate::subgraph::DistributedGraph;

/// Turns a captured panic payload into a readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "worker thread panicked".to_string(),
        },
    }
}

/// The per-worker slice of engine state one superstep works on.
struct WorkerPart<'a, V, M> {
    subgraph: &'a crate::subgraph::Subgraph,
    routes: &'a crate::routing::WorkerRoutes,
    values: &'a mut Vec<V>,
    inbox: &'a mut exchange::Inbox<M>,
    /// This worker's row of the gather-side shard matrix (messages routed
    /// to it at the end of the previous superstep, by source worker).
    inbound: &'a mut Vec<Vec<(u32, M)>>,
    outbox: &'a mut Vec<exchange::OutboxEntry<M>>,
    /// This worker's row of the scatter-side shard matrix (messages it
    /// routes this superstep, by destination worker).
    outbound: &'a mut Vec<Vec<(u32, M)>>,
    /// `(work, changes, sent)` of the superstep.
    result: &'a mut Option<(u64, usize, usize)>,
}

/// One worker's whole superstep: merge the shards routed to this worker at
/// the end of the previous superstep into the flat inbox (gather), run the
/// program over the subgraph (compute), then fan the outbox out into the
/// worker's own row of per-destination shards along the precomputed routes
/// (scatter). Touches only worker-local state, so the threaded mode runs
/// it lock-free with a single spawn per worker per superstep.
fn run_worker<P: SubgraphProgram, R: Recorder>(
    program: &P,
    superstep: usize,
    epoch: u32,
    recorder: &R,
    part: WorkerPart<'_, P::Value, P::Message>,
) {
    let span_ctx = SpanCtx {
        epoch,
        superstep: superstep as u32,
        worker: part.subgraph.part().index() as u32,
    };
    let started = recorder.start();
    part.inbox.fill(part.inbound);
    recorder.span(started, span_ctx, Phase::Gather);

    let started = recorder.start();
    let mut ctx = SubgraphContext::new(part.subgraph, part.values, part.inbox.view(), part.outbox);
    program.run_superstep(&mut ctx, superstep);
    let (work, changes) = ctx.finish();
    recorder.span(started, span_ctx, Phase::Compute);

    let started = recorder.start();
    let sent = exchange::scatter(part.routes, part.subgraph, part.outbox, part.outbound);
    recorder.span(started, span_ctx, Phase::Scatter);
    *part.result = Some((work, changes, sent));
}

/// How the workers of a superstep are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Workers run one after another on the calling thread. Deterministic
    /// and easiest to debug; the statistics are identical to threaded mode.
    #[default]
    Sequential,
    /// Workers of each superstep run on their own OS threads (one thread per
    /// subgraph, as in the paper's one-worker-per-subgraph deployment).
    Threaded,
}

/// The subgraph-centric BSP engine.
///
/// The engine drives a [`SubgraphProgram`] over a [`DistributedGraph`]
/// through the three stages of each superstep described in Section IV-B of
/// the paper: computation (each worker runs the sequential algorithm on its
/// subgraph), communication (replica messages are routed between workers)
/// and synchronization (a barrier). It records the per-worker work and
/// message counters that the evaluation tables are built from.
///
/// # Examples
///
/// ```
/// use ebv_bsp::{BspEngine, DistributedGraph};
/// use ebv_graph::generators::named;
/// use ebv_partition::{EbvPartitioner, Partitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = named::two_triangles();
/// let partition = EbvPartitioner::new().partition(&graph, 2)?;
/// let distributed = DistributedGraph::build(&graph, &partition)?;
/// // `ebv-algorithms` provides ready-made programs (CC, SSSP, PageRank).
/// assert_eq!(distributed.num_workers(), 2);
/// let _engine = BspEngine::sequential();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BspEngine {
    mode: ExecutionMode,
}

/// The result of executing a program: the global per-vertex values (taken
/// from each vertex's master replica) plus the execution counters.
#[derive(Debug, Clone)]
pub struct BspOutcome<V> {
    /// Final value of every vertex, indexed by vertex id.
    pub values: Vec<V>,
    /// Per-superstep, per-worker counters.
    pub stats: ExecutionStats,
    /// Number of supersteps executed.
    pub supersteps: usize,
}

impl BspEngine {
    /// Creates an engine that runs workers sequentially.
    pub fn sequential() -> Self {
        BspEngine {
            mode: ExecutionMode::Sequential,
        }
    }

    /// Creates an engine that runs each worker on its own thread.
    pub fn threaded() -> Self {
        BspEngine {
            mode: ExecutionMode::Threaded,
        }
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Executes `program` over `distributed` until quiescence (or the
    /// program's superstep limit for fixed-iteration programs).
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run<P: SubgraphProgram>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
    ) -> Result<BspOutcome<P::Value>> {
        self.execute(distributed, program, None, &NoopRecorder)
    }

    /// [`run`](BspEngine::run) with telemetry: phase spans (gather,
    /// compute, scatter per worker; barrier per superstep) and message
    /// counters are reported through `recorder`.
    ///
    /// Instrumentation does not perturb execution: values and
    /// [`ExecutionStats`] are bit-identical to an uninstrumented run.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_with<P: SubgraphProgram, R: Recorder>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        recorder: &R,
    ) -> Result<BspOutcome<P::Value>> {
        self.execute(distributed, program, None, recorder)
    }

    /// Executes `program` warm-started from `prior` — the global per-vertex
    /// values of a previous epoch's [`BspOutcome`] — instead of from
    /// [`SubgraphProgram::initial_value`].
    ///
    /// Every replica of vertex `v` with `v < prior.len()` is seeded with
    /// [`SubgraphProgram::warm_value`]`(v, &prior[v], subgraph)`; vertices
    /// beyond `prior` (the universe may have grown across mutation epochs)
    /// fall back to `initial_value`. Combined with an incremental program
    /// (e.g. `ebv_algorithms::IncrementalConnectedComponents`) this re-runs
    /// a fixpoint from the previous epoch's answer, activating only the
    /// region the mutations disturbed.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_warm<P: SubgraphProgram>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        prior: &[P::Value],
    ) -> Result<BspOutcome<P::Value>> {
        self.execute(distributed, program, Some(prior), &NoopRecorder)
    }

    /// [`run_warm`](BspEngine::run_warm) with telemetry — see
    /// [`run_with`](BspEngine::run_with) for the spans and the
    /// determinism guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_warm_with<P: SubgraphProgram, R: Recorder>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        prior: &[P::Value],
        recorder: &R,
    ) -> Result<BspOutcome<P::Value>> {
        self.execute(distributed, program, Some(prior), recorder)
    }

    fn execute<P: SubgraphProgram, R: Recorder>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        prior: Option<&[P::Value]>,
        recorder: &R,
    ) -> Result<BspOutcome<P::Value>> {
        let num_workers = distributed.num_workers();
        if num_workers == 0 {
            return Err(BspError::InvalidParameter {
                parameter: "distributed",
                message: "the distributed graph has no workers".to_string(),
            });
        }
        let routing = distributed.routing();
        debug_assert_eq!(
            routing.epoch(),
            distributed.epoch(),
            "routing table is stale"
        );

        // Cold runs seed from `initial_value`, warm runs from `warm_value`
        // over the previous epoch's outcome.
        let seed = |v: ebv_graph::VertexId, sg: &crate::subgraph::Subgraph| -> P::Value {
            match prior {
                Some(prior) if v.index() < prior.len() => {
                    program.warm_value(v, &prior[v.index()], sg)
                }
                _ => program.initial_value(v, sg),
            }
        };

        // Per-worker local state; every message buffer lives in the plane
        // and is reused across supersteps (steady-state supersteps perform
        // no per-message allocation).
        let mut values: Vec<Vec<P::Value>> = distributed
            .subgraphs()
            .iter()
            .map(|sg| sg.vertices().iter().map(|&v| seed(v, sg)).collect())
            .collect();
        let mut plane: MessagePlane<P::Message> =
            MessagePlane::new(distributed.subgraphs().iter().map(|sg| sg.num_vertices()));

        let mutation = distributed.last_mutation();
        let mut stats = ExecutionStats {
            num_workers,
            epoch: distributed.epoch(),
            workers_touched: mutation.workers_touched,
            edges_rebuilt: mutation.edges_rebuilt,
            supersteps: Vec::new(),
        };

        let max_supersteps = program.max_supersteps();
        let mut converged = false;
        let mut executed = 0usize;
        let epoch = distributed.epoch() as u32;
        // Engine-side (barrier) spans use worker == p by convention.
        let engine_worker = num_workers as u32;

        for superstep in 0..max_supersteps {
            // --- Worker phase: gather + computation + scatter ----------------------
            // Each worker merges the shards routed to it at the end of the
            // previous superstep into its flat inbox (exchange phase two,
            // pipelined into the next superstep so the whole superstep is
            // one parallel phase), runs the program over its subgraph, and
            // fans its outbox out into its own row of per-destination
            // shards along the precomputed routes (exchange phase one) —
            // purely worker-local state, so the threaded mode needs no
            // locks and only one thread spawn per worker per superstep.
            let mut results: Vec<Option<(u64, usize, usize)>> = vec![None; num_workers];
            {
                let parts = distributed
                    .subgraphs()
                    .iter()
                    .zip(routing.worker_tables())
                    .zip(values.iter_mut())
                    .zip(plane.inboxes.iter_mut())
                    .zip(plane.in_shards.iter_mut())
                    .zip(plane.outboxes.iter_mut())
                    .zip(plane.out_shards.iter_mut())
                    .zip(results.iter_mut())
                    .map(
                        |(
                            ((((((subgraph, routes), values), inbox), inbound), outbox), outbound),
                            result,
                        )| WorkerPart {
                            subgraph,
                            routes,
                            values,
                            inbox,
                            inbound,
                            outbox,
                            outbound,
                            result,
                        },
                    );
                match self.mode {
                    ExecutionMode::Sequential => {
                        for part in parts {
                            run_worker(program, superstep, epoch, recorder, part);
                        }
                    }
                    ExecutionMode::Threaded => {
                        // Workers are independent within a superstep, so
                        // they are chunked over at most
                        // `available_parallelism` OS threads (each chunk
                        // runs its workers in order — bit-identical to any
                        // other schedule) instead of oversubscribing one
                        // thread per worker.
                        let threads = std::thread::available_parallelism()
                            .map(std::num::NonZeroUsize::get)
                            .unwrap_or(num_workers)
                            .min(num_workers)
                            .max(1);
                        let chunk_size = num_workers.div_ceil(threads);
                        let mut chunks: Vec<Vec<WorkerPart<'_, P::Value, P::Message>>> =
                            Vec::with_capacity(threads);
                        let mut rest: Vec<_> = parts.collect();
                        while !rest.is_empty() {
                            let tail = rest.split_off(chunk_size.min(rest.len()));
                            chunks.push(rest);
                            rest = tail;
                        }
                        let panicked = std::thread::scope(|scope| {
                            let handles: Vec<_> = chunks
                                .into_iter()
                                .map(|chunk| {
                                    scope.spawn(move || {
                                        for part in chunk {
                                            run_worker(program, superstep, epoch, recorder, part);
                                        }
                                    })
                                })
                                .collect();
                            let mut panicked = None;
                            for (index, handle) in handles.into_iter().enumerate() {
                                if let Err(payload) = handle.join() {
                                    panicked.get_or_insert((index, panic_message(payload)));
                                }
                            }
                            panicked
                        });
                        if let Some((chunk_index, message)) = panicked {
                            // The chunk ran its workers in order, so the
                            // first result-less worker of the chunk is the
                            // one that panicked.
                            let worker = (chunk_index * chunk_size..num_workers)
                                .find(|&w| results[w].is_none())
                                .expect("a panicked chunk left its worker's result empty");
                            return Err(BspError::WorkerPanicked { worker, message });
                        }
                    }
                }
            }

            // --- Exchange hand-off -------------------------------------------------
            // Hand this superstep's scattered shards to the destination
            // side (a `Vec` swap per cell, no message moves); destinations
            // merge them at the start of the next superstep, in ascending
            // source order, so values and counters are identical across
            // modes. The per-destination delivery counts are the shard
            // lengths — no message needs to be touched to count them.
            let barrier_started = recorder.start();
            plane.transpose();
            let received: Vec<usize> = plane
                .in_shards
                .iter()
                .map(|row| row.iter().map(Vec::len).sum())
                .collect();

            // --- Statistics / synchronization --------------------------------------
            let mut superstep_stats = SuperstepStats {
                per_worker: vec![WorkerSuperstepStats::default(); num_workers],
            };
            let mut total_messages = 0usize;
            let mut total_changes = 0usize;
            for (worker, result) in results.into_iter().enumerate() {
                let (work, changes, sent) = result.expect("worker produced a result");
                let per_worker = &mut superstep_stats.per_worker[worker];
                per_worker.work = work;
                per_worker.updates = changes;
                per_worker.messages_sent = sent;
                per_worker.messages_received = received[worker];
                total_changes += changes;
                total_messages += sent;
            }
            stats.supersteps.push(superstep_stats);
            executed = superstep + 1;
            recorder.span(
                barrier_started,
                SpanCtx {
                    epoch,
                    superstep: superstep as u32,
                    worker: engine_worker,
                },
                Phase::Barrier,
            );
            recorder.counter_add("ebv_bsp_messages_total", total_messages as u64);
            recorder.counter_add("ebv_bsp_supersteps_total", 1);

            if program.halt_on_quiescence() && total_messages == 0 && total_changes == 0 {
                converged = true;
                break;
            }
        }

        if program.halt_on_quiescence() && !converged {
            return Err(BspError::DidNotConverge { max_supersteps });
        }

        // Extract the global result from each vertex's master replica via
        // the precomputed master-location array (no per-vertex hash
        // probes).
        let global_values: Vec<P::Value> = (0..distributed.num_vertices())
            .map(|raw| match routing.master_location(raw) {
                Some((worker, local)) => values[worker][local].clone(),
                // Vertices absent from every subgraph report their seed
                // value (initial for cold runs, warm for warm runs).
                None => {
                    let v = VertexId::from(raw);
                    let sg = distributed.subgraph(distributed.replicas().master_of(v));
                    seed(v, sg)
                }
            })
            .collect();

        Ok(BspOutcome {
            values: global_values,
            stats,
            supersteps: executed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SubgraphContext;
    use crate::subgraph::Subgraph;
    use ebv_graph::generators::named;
    use ebv_graph::{Graph, VertexId};
    use ebv_partition::{EbvPartitioner, Partitioner};

    /// Minimal test program: propagate the minimum vertex id over the graph
    /// (a toy connected-components kernel defined inline so the engine can
    /// be tested without depending on `ebv-algorithms`).
    struct MinLabel;

    impl SubgraphProgram for MinLabel {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "min-label".to_string()
        }

        fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            vertex.raw()
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            let n = ctx.subgraph().num_vertices();
            // Merge incoming replica values.
            let mut changed: Vec<bool> = vec![false; n];
            for (i, was_changed) in changed.iter_mut().enumerate() {
                let incoming_min = ctx.messages(i).iter().copied().min();
                if let Some(m) = incoming_min {
                    if m < *ctx.value(i) {
                        ctx.set_value(i, m);
                        *was_changed = true;
                    }
                }
            }
            // Local propagation until fixpoint.
            loop {
                let mut any = false;
                for e in 0..ctx.subgraph().num_edges() {
                    let edge = ctx.subgraph().edges()[e];
                    let (Some(s), Some(d)) = (
                        ctx.subgraph().local_index_of(edge.src),
                        ctx.subgraph().local_index_of(edge.dst),
                    ) else {
                        continue;
                    };
                    ctx.add_work(1);
                    let sv = *ctx.value(s);
                    let dv = *ctx.value(d);
                    let min = sv.min(dv);
                    if sv > min {
                        ctx.set_value(s, min);
                        changed[s] = true;
                        any = true;
                    }
                    if dv > min {
                        ctx.set_value(d, min);
                        changed[d] = true;
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            // Ship changed boundary values to the other replicas.
            for (i, &was_changed) in changed.iter().enumerate() {
                if was_changed {
                    let value = *ctx.value(i);
                    ctx.send_to_replicas(i, value);
                }
            }
            changed.iter().filter(|&&c| c).count()
        }
    }

    fn run_min_label(graph: &Graph, p: usize, engine: BspEngine) -> BspOutcome<u64> {
        let partition = EbvPartitioner::new().partition(graph, p).unwrap();
        let dg = DistributedGraph::build(graph, &partition).unwrap();
        engine.run(&dg, &MinLabel).unwrap()
    }

    #[test]
    fn min_label_converges_on_two_triangles() {
        let g = named::two_triangles();
        let outcome = run_min_label(&g, 2, BspEngine::sequential());
        assert_eq!(outcome.values, vec![0, 0, 0, 3, 3, 3]);
        assert!(outcome.supersteps >= 1);
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let g = named::small_social_graph();
        let seq = run_min_label(&g, 4, BspEngine::sequential());
        let thr = run_min_label(&g, 4, BspEngine::threaded());
        assert_eq!(seq.values, thr.values);
        // The whole counter structure — per worker, per superstep — is
        // bit-identical, not just the totals.
        assert_eq!(seq.stats, thr.stats);
        assert_eq!(seq.supersteps, thr.supersteps);
        assert_eq!(BspEngine::threaded().mode(), ExecutionMode::Threaded);
    }

    /// A program whose worker 1 panics: the threaded engine must surface a
    /// typed error instead of aborting the process.
    struct PanicsOnWorker(usize);

    impl SubgraphProgram for PanicsOnWorker {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "panics".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            if ctx.subgraph().part().index() == self.0 {
                panic!("worker {} exploded", self.0);
            }
            0
        }
    }

    #[test]
    fn threaded_worker_panics_surface_as_typed_errors() {
        let g = named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 4).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let err = BspEngine::threaded()
            .run(&dg, &PanicsOnWorker(1))
            .unwrap_err();
        match err {
            BspError::WorkerPanicked { worker, message } => {
                assert_eq!(worker, 1);
                assert_eq!(message, "worker 1 exploded");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn single_worker_sends_no_messages() {
        let g = named::two_triangles();
        let outcome = run_min_label(&g, 1, BspEngine::sequential());
        assert_eq!(outcome.stats.total_messages(), 0);
        assert_eq!(outcome.values, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn stats_record_work_and_messages() {
        let g = named::small_social_graph();
        let outcome = run_min_label(&g, 4, BspEngine::sequential());
        assert!(outcome.stats.total_work() > 0);
        assert!(outcome.stats.total_messages() > 0);
        assert_eq!(outcome.stats.num_workers, 4);
        assert_eq!(outcome.stats.num_supersteps(), outcome.supersteps);
    }

    /// A program that never converges must hit the superstep limit.
    struct NeverConverges;

    impl SubgraphProgram for NeverConverges {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "never".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            superstep: usize,
        ) -> usize {
            ctx.set_value(0, superstep as u64);
            1
        }

        fn max_supersteps(&self) -> usize {
            5
        }
    }

    #[test]
    fn non_convergence_is_reported() {
        let g = named::two_triangles();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let err = BspEngine::sequential()
            .run(&dg, &NeverConverges)
            .unwrap_err();
        assert!(matches!(
            err,
            BspError::DidNotConverge { max_supersteps: 5 }
        ));
    }

    /// A fixed-iteration program runs exactly `max_supersteps` supersteps.
    struct FixedIterations;

    impl SubgraphProgram for FixedIterations {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "fixed".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            let current = *ctx.value(0);
            ctx.set_value(0, current + 1);
            1
        }

        fn max_supersteps(&self) -> usize {
            7
        }

        fn halt_on_quiescence(&self) -> bool {
            false
        }
    }

    #[test]
    fn fixed_iteration_programs_run_to_their_limit() {
        let g = named::two_triangles();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let outcome = BspEngine::sequential().run(&dg, &FixedIterations).unwrap();
        assert_eq!(outcome.supersteps, 7);
    }
}
