//! The bulk-synchronous-parallel execution engine.

use ebv_graph::VertexId;
use ebv_partition::PartitionId;

use crate::error::{BspError, Result};
use crate::program::{MessageTarget, SubgraphContext, SubgraphProgram};
use crate::stats::{ExecutionStats, SuperstepStats, WorkerSuperstepStats};
use crate::subgraph::DistributedGraph;

/// How the workers of a superstep are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Workers run one after another on the calling thread. Deterministic
    /// and easiest to debug; the statistics are identical to threaded mode.
    #[default]
    Sequential,
    /// Workers of each superstep run on their own OS threads (one thread per
    /// subgraph, as in the paper's one-worker-per-subgraph deployment).
    Threaded,
}

/// The subgraph-centric BSP engine.
///
/// The engine drives a [`SubgraphProgram`] over a [`DistributedGraph`]
/// through the three stages of each superstep described in Section IV-B of
/// the paper: computation (each worker runs the sequential algorithm on its
/// subgraph), communication (replica messages are routed between workers)
/// and synchronization (a barrier). It records the per-worker work and
/// message counters that the evaluation tables are built from.
///
/// # Examples
///
/// ```
/// use ebv_bsp::{BspEngine, DistributedGraph};
/// use ebv_graph::generators::named;
/// use ebv_partition::{EbvPartitioner, Partitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = named::two_triangles();
/// let partition = EbvPartitioner::new().partition(&graph, 2)?;
/// let distributed = DistributedGraph::build(&graph, &partition)?;
/// // `ebv-algorithms` provides ready-made programs (CC, SSSP, PageRank).
/// assert_eq!(distributed.num_workers(), 2);
/// let _engine = BspEngine::sequential();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BspEngine {
    mode: ExecutionMode,
}

/// The result of executing a program: the global per-vertex values (taken
/// from each vertex's master replica) plus the execution counters.
#[derive(Debug, Clone)]
pub struct BspOutcome<V> {
    /// Final value of every vertex, indexed by vertex id.
    pub values: Vec<V>,
    /// Per-superstep, per-worker counters.
    pub stats: ExecutionStats,
    /// Number of supersteps executed.
    pub supersteps: usize,
}

impl BspEngine {
    /// Creates an engine that runs workers sequentially.
    pub fn sequential() -> Self {
        BspEngine {
            mode: ExecutionMode::Sequential,
        }
    }

    /// Creates an engine that runs each worker on its own thread.
    pub fn threaded() -> Self {
        BspEngine {
            mode: ExecutionMode::Threaded,
        }
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Executes `program` over `distributed` until quiescence (or the
    /// program's superstep limit for fixed-iteration programs).
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run<P: SubgraphProgram>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
    ) -> Result<BspOutcome<P::Value>> {
        self.execute(distributed, program, None)
    }

    /// Executes `program` warm-started from `prior` — the global per-vertex
    /// values of a previous epoch's [`BspOutcome`] — instead of from
    /// [`SubgraphProgram::initial_value`].
    ///
    /// Every replica of vertex `v` with `v < prior.len()` is seeded with
    /// [`SubgraphProgram::warm_value`]`(v, &prior[v], subgraph)`; vertices
    /// beyond `prior` (the universe may have grown across mutation epochs)
    /// fall back to `initial_value`. Combined with an incremental program
    /// (e.g. `ebv_algorithms::IncrementalConnectedComponents`) this re-runs
    /// a fixpoint from the previous epoch's answer, activating only the
    /// region the mutations disturbed.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_warm<P: SubgraphProgram>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        prior: &[P::Value],
    ) -> Result<BspOutcome<P::Value>> {
        self.execute(distributed, program, Some(prior))
    }

    fn execute<P: SubgraphProgram>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        prior: Option<&[P::Value]>,
    ) -> Result<BspOutcome<P::Value>> {
        let num_workers = distributed.num_workers();
        if num_workers == 0 {
            return Err(BspError::InvalidParameter {
                parameter: "distributed",
                message: "the distributed graph has no workers".to_string(),
            });
        }

        // Cold runs seed from `initial_value`, warm runs from `warm_value`
        // over the previous epoch's outcome.
        let seed = |v: ebv_graph::VertexId, sg: &crate::subgraph::Subgraph| -> P::Value {
            match prior {
                Some(prior) if v.index() < prior.len() => {
                    program.warm_value(v, &prior[v.index()], sg)
                }
                _ => program.initial_value(v, sg),
            }
        };

        // Per-worker local state.
        let mut values: Vec<Vec<P::Value>> = distributed
            .subgraphs()
            .iter()
            .map(|sg| sg.vertices().iter().map(|&v| seed(v, sg)).collect())
            .collect();
        let mut inboxes: Vec<Vec<Vec<P::Message>>> = distributed
            .subgraphs()
            .iter()
            .map(|sg| vec![Vec::new(); sg.num_vertices()])
            .collect();

        let mutation = distributed.last_mutation();
        let mut stats = ExecutionStats {
            num_workers,
            epoch: distributed.epoch(),
            workers_touched: mutation.workers_touched,
            edges_rebuilt: mutation.edges_rebuilt,
            supersteps: Vec::new(),
        };

        let max_supersteps = program.max_supersteps();
        let mut converged = false;
        let mut executed = 0usize;

        for superstep in 0..max_supersteps {
            // --- Computation stage -------------------------------------------------
            type WorkerOutput<M> = (Vec<(VertexId, M, MessageTarget)>, u64, usize);
            let worker_outputs: Vec<WorkerOutput<P::Message>> = match self.mode {
                ExecutionMode::Sequential => {
                    let mut outputs = Vec::with_capacity(num_workers);
                    for (worker, sg) in distributed.subgraphs().iter().enumerate() {
                        let inbox = std::mem::replace(
                            &mut inboxes[worker],
                            vec![Vec::new(); sg.num_vertices()],
                        );
                        let mut ctx = SubgraphContext::new(sg, &mut values[worker], &inbox);
                        program.run_superstep(&mut ctx, superstep);
                        outputs.push(ctx.finish());
                    }
                    outputs
                }
                ExecutionMode::Threaded => {
                    let subgraphs = distributed.subgraphs();
                    let mut outputs: Vec<Option<WorkerOutput<P::Message>>> =
                        (0..num_workers).map(|_| None).collect();
                    std::thread::scope(|scope| {
                        let mut handles = Vec::with_capacity(num_workers);
                        for (((sg, values), inbox), output) in subgraphs
                            .iter()
                            .zip(values.iter_mut())
                            .zip(inboxes.iter_mut())
                            .zip(outputs.iter_mut())
                        {
                            handles.push(scope.spawn(move || {
                                let taken =
                                    std::mem::replace(inbox, vec![Vec::new(); sg.num_vertices()]);
                                let mut ctx = SubgraphContext::new(sg, values, &taken);
                                program.run_superstep(&mut ctx, superstep);
                                *output = Some(ctx.finish());
                            }));
                        }
                        for handle in handles {
                            handle.join().expect("worker thread panicked");
                        }
                    });
                    outputs
                        .into_iter()
                        .map(|o| o.expect("worker produced output"))
                        .collect()
                }
            };

            // --- Communication stage -----------------------------------------------
            let mut superstep_stats = SuperstepStats {
                per_worker: vec![WorkerSuperstepStats::default(); num_workers],
            };
            let mut total_messages = 0usize;
            let mut total_changes = 0usize;
            for (worker, (outbox, work, changes)) in worker_outputs.into_iter().enumerate() {
                superstep_stats.per_worker[worker].work = work;
                superstep_stats.per_worker[worker].updates = changes;
                total_changes += changes;
                for (vertex, message, target) in outbox {
                    let master = distributed.replicas().master_of(vertex);
                    for &replica in distributed.replicas().replicas_of(vertex) {
                        if replica.index() == worker {
                            continue;
                        }
                        let deliver = match target {
                            MessageTarget::AllReplicas => true,
                            MessageTarget::Master => replica == master,
                            MessageTarget::Mirrors => replica != master,
                        };
                        if !deliver {
                            continue;
                        }
                        let destination = distributed.subgraph(replica);
                        let local = destination
                            .local_index_of(vertex)
                            .expect("replica table lists this partition");
                        inboxes[replica.index()][local].push(message.clone());
                        superstep_stats.per_worker[worker].messages_sent += 1;
                        superstep_stats.per_worker[replica.index()].messages_received += 1;
                        total_messages += 1;
                    }
                }
            }
            stats.supersteps.push(superstep_stats);
            executed = superstep + 1;

            // --- Synchronization stage / convergence check -------------------------
            if program.halt_on_quiescence() && total_messages == 0 && total_changes == 0 {
                converged = true;
                break;
            }
        }

        if program.halt_on_quiescence() && !converged {
            return Err(BspError::DidNotConverge { max_supersteps });
        }

        // Extract the global result from each vertex's master replica.
        let global_values: Vec<P::Value> = (0..distributed.num_vertices())
            .map(|raw| {
                let v = VertexId::from(raw);
                let master: PartitionId = distributed.replicas().master_of(v);
                let sg = distributed.subgraph(master);
                match sg.local_index_of(v) {
                    Some(local) => values[master.index()][local].clone(),
                    // Vertices absent from every subgraph report their seed
                    // value (initial for cold runs, warm for warm runs).
                    None => seed(v, sg),
                }
            })
            .collect();

        Ok(BspOutcome {
            values: global_values,
            stats,
            supersteps: executed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SubgraphContext;
    use crate::subgraph::Subgraph;
    use ebv_graph::generators::named;
    use ebv_graph::{Graph, VertexId};
    use ebv_partition::{EbvPartitioner, Partitioner};

    /// Minimal test program: propagate the minimum vertex id over the graph
    /// (a toy connected-components kernel defined inline so the engine can
    /// be tested without depending on `ebv-algorithms`).
    struct MinLabel;

    impl SubgraphProgram for MinLabel {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "min-label".to_string()
        }

        fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            vertex.raw()
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            let n = ctx.subgraph().num_vertices();
            // Merge incoming replica values.
            let mut changed: Vec<bool> = vec![false; n];
            for (i, was_changed) in changed.iter_mut().enumerate() {
                let incoming_min = ctx.messages(i).iter().copied().min();
                if let Some(m) = incoming_min {
                    if m < *ctx.value(i) {
                        ctx.set_value(i, m);
                        *was_changed = true;
                    }
                }
            }
            // Local propagation until fixpoint.
            loop {
                let mut any = false;
                for e in 0..ctx.subgraph().num_edges() {
                    let edge = ctx.subgraph().edges()[e];
                    let (Some(s), Some(d)) = (
                        ctx.subgraph().local_index_of(edge.src),
                        ctx.subgraph().local_index_of(edge.dst),
                    ) else {
                        continue;
                    };
                    ctx.add_work(1);
                    let sv = *ctx.value(s);
                    let dv = *ctx.value(d);
                    let min = sv.min(dv);
                    if sv > min {
                        ctx.set_value(s, min);
                        changed[s] = true;
                        any = true;
                    }
                    if dv > min {
                        ctx.set_value(d, min);
                        changed[d] = true;
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            // Ship changed boundary values to the other replicas.
            for (i, &was_changed) in changed.iter().enumerate() {
                if was_changed {
                    let value = *ctx.value(i);
                    ctx.send_to_replicas(i, value);
                }
            }
            changed.iter().filter(|&&c| c).count()
        }
    }

    fn run_min_label(graph: &Graph, p: usize, engine: BspEngine) -> BspOutcome<u64> {
        let partition = EbvPartitioner::new().partition(graph, p).unwrap();
        let dg = DistributedGraph::build(graph, &partition).unwrap();
        engine.run(&dg, &MinLabel).unwrap()
    }

    #[test]
    fn min_label_converges_on_two_triangles() {
        let g = named::two_triangles();
        let outcome = run_min_label(&g, 2, BspEngine::sequential());
        assert_eq!(outcome.values, vec![0, 0, 0, 3, 3, 3]);
        assert!(outcome.supersteps >= 1);
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let g = named::small_social_graph();
        let seq = run_min_label(&g, 4, BspEngine::sequential());
        let thr = run_min_label(&g, 4, BspEngine::threaded());
        assert_eq!(seq.values, thr.values);
        assert_eq!(seq.stats.total_messages(), thr.stats.total_messages());
        assert_eq!(seq.supersteps, thr.supersteps);
        assert_eq!(BspEngine::threaded().mode(), ExecutionMode::Threaded);
    }

    #[test]
    fn single_worker_sends_no_messages() {
        let g = named::two_triangles();
        let outcome = run_min_label(&g, 1, BspEngine::sequential());
        assert_eq!(outcome.stats.total_messages(), 0);
        assert_eq!(outcome.values, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn stats_record_work_and_messages() {
        let g = named::small_social_graph();
        let outcome = run_min_label(&g, 4, BspEngine::sequential());
        assert!(outcome.stats.total_work() > 0);
        assert!(outcome.stats.total_messages() > 0);
        assert_eq!(outcome.stats.num_workers, 4);
        assert_eq!(outcome.stats.num_supersteps(), outcome.supersteps);
    }

    /// A program that never converges must hit the superstep limit.
    struct NeverConverges;

    impl SubgraphProgram for NeverConverges {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "never".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            superstep: usize,
        ) -> usize {
            ctx.set_value(0, superstep as u64);
            1
        }

        fn max_supersteps(&self) -> usize {
            5
        }
    }

    #[test]
    fn non_convergence_is_reported() {
        let g = named::two_triangles();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let err = BspEngine::sequential()
            .run(&dg, &NeverConverges)
            .unwrap_err();
        assert!(matches!(
            err,
            BspError::DidNotConverge { max_supersteps: 5 }
        ));
    }

    /// A fixed-iteration program runs exactly `max_supersteps` supersteps.
    struct FixedIterations;

    impl SubgraphProgram for FixedIterations {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "fixed".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            let current = *ctx.value(0);
            ctx.set_value(0, current + 1);
            1
        }

        fn max_supersteps(&self) -> usize {
            7
        }

        fn halt_on_quiescence(&self) -> bool {
            false
        }
    }

    #[test]
    fn fixed_iteration_programs_run_to_their_limit() {
        let g = named::two_triangles();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let outcome = BspEngine::sequential().run(&dg, &FixedIterations).unwrap();
        assert_eq!(outcome.supersteps, 7);
    }
}
