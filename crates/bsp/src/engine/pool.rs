//! The persistent worker pool: a fixed set of OS threads parked across
//! supersteps (and, for the shared pool, across runs and mutation epochs),
//! fed superstep tasks over `std::sync::mpsc` channels.
//!
//! PR 5's threaded mode spawned one OS thread per worker-chunk per
//! superstep, so on small graphs spawn cost dominated the barrier. The pool
//! amortizes that cost to zero in the steady state: threads are created
//! once (per [`WorkerPool::new`], or once per process for the
//! [`shared_worker_pool`]) and every superstep only moves closures through
//! channels.
//!
//! Each submitted task reports its own completion — including a captured
//! panic payload — over a per-call completion channel, which gives the
//! engine **exact** per-worker panic attribution (satellite of PR 8; the
//! chunked spawn path previously attributed via first-missing-result within
//! a chunk) and doubles as the safety fence for the lifetime erasure
//! described on [`WorkerPool::run_tasks`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, OnceLock};
use std::thread;

/// A type-erased, `'static` pool job as it travels through a lane channel.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One worker's superstep closure, tagged with the worker (partition) index
/// the completion message reports.
pub(crate) struct PoolTask<'env> {
    /// Worker (partition) index, for panic attribution.
    pub(crate) worker: usize,
    /// The work itself; may borrow engine state for `'env`.
    pub(crate) run: Box<dyn FnOnce() + Send + 'env>,
}

/// Total pool threads ever spawned by this process, across every
/// [`WorkerPool`] (shared or run-local). Test hook for the pool-reuse
/// guarantee: across warm epochs the counter must not move.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Returns the total number of pool threads this process has ever spawned
/// (across the shared pool and every run-local pool).
///
/// This is the observable side of the pool-persistence guarantee:
/// re-running a [`BspEngine`](crate::BspEngine) in
/// [`Threaded`](crate::ExecutionMode::Threaded) mode across many mutation
/// epochs leaves the counter unchanged after the first run.
pub fn pool_threads_spawned() -> u64 {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// A fixed pool of named OS threads (`ebv-pool-<i>`), one mpsc lane each.
///
/// Threads are created once in [`new`](WorkerPool::new) and parked on their
/// lane's `recv` between tasks; dropping the pool closes the lanes and
/// joins every thread. The superstep scheduler assigns each worker task to
/// a lane (see `engine::schedule`), so one lane runs its tasks in
/// submission order while distinct lanes run concurrently.
#[derive(Debug)]
pub struct WorkerPool {
    lanes: Vec<mpsc::Sender<Job>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool of `threads` parked worker threads (clamped to at
    /// least one).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let mut lanes = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = mpsc::channel::<Job>();
            let handle = thread::Builder::new()
                .name(format!("ebv-pool-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn a pool worker thread");
            THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
            lanes.push(tx);
            handles.push(handle);
        }
        WorkerPool { lanes, handles }
    }

    /// Number of pool threads (= lanes the scheduler can fill).
    pub fn threads(&self) -> usize {
        self.lanes.len()
    }

    /// Runs one superstep's tasks, `assignments[lane]` in order on lane
    /// `lane`, and blocks until every task has completed. Returns the
    /// panics that occurred, `(worker, message)` in ascending worker order;
    /// an empty vector means every task ran to completion.
    ///
    /// Tasks may borrow engine state (`'env`): the borrow is erased to
    /// `'static` to cross the lane channels, and re-fenced by blocking —
    /// see the safety argument inline.
    pub(crate) fn run_tasks<'env>(
        &self,
        assignments: Vec<Vec<PoolTask<'env>>>,
    ) -> Vec<(usize, String)> {
        debug_assert!(assignments.len() <= self.lanes.len());
        let (done_tx, done_rx) = mpsc::channel::<(usize, Option<String>)>();
        let mut panics: Vec<(usize, String)> = Vec::new();
        let mut submitted = 0usize;
        for (lane, tasks) in assignments.into_iter().enumerate() {
            for task in tasks {
                let PoolTask { worker, run } = task;
                let done = done_tx.clone();
                // The wrapper consumes `run` (dropping every `'env` borrow it
                // captured) *before* sending the completion message, so a
                // received completion proves the borrows are dead.
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(run));
                    let _ = done.send((worker, result.err().map(panic_message)));
                });
                // SAFETY: the erased job never outlives `'env`. Every job is
                // either (a) executed by its lane thread, which consumes the
                // closure and then sends on `done`, or (b) dropped
                // immediately below on a failed send, or (c) dropped by a
                // lane thread exiting — impossible while this `&self` borrow
                // is live, because lanes only close in `Drop` (which needs
                // exclusive access). This function does not return until it
                // has received one completion per submitted job or the
                // completion channel disconnected — and disconnection
                // requires every outstanding job (each owning a `done`
                // clone) to have been consumed or dropped. Either way no
                // borrow captured by a job survives past this call, and the
                // channel hand-offs provide the release/acquire ordering
                // that makes the workers' writes visible to the caller.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
                match self.lanes[lane].send(job) {
                    Ok(()) => submitted += 1,
                    // The lane is gone (poisoned pool); the unsent job —
                    // and its borrows — died with the `SendError`.
                    Err(_) => panics.push((worker, "pool worker thread unavailable".to_string())),
                }
            }
        }
        drop(done_tx);
        for _ in 0..submitted {
            match done_rx.recv() {
                Ok((worker, Some(message))) => panics.push((worker, message)),
                Ok((_, None)) => {}
                Err(_) => break,
            }
        }
        panics.sort_unstable_by_key(|&(worker, _)| worker);
        panics
    }
}

impl Drop for WorkerPool {
    /// Graceful shutdown: closing the lanes ends each thread's `recv` loop;
    /// joining ensures no pool thread outlives the pool.
    fn drop(&mut self) {
        self.lanes.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide shared pool behind
/// [`ExecutionMode::Threaded`](crate::ExecutionMode::Threaded), created
/// lazily on first use and never torn down — which is exactly what keeps
/// warm mutation epochs spawn-free: every `run`/`run_warm` of every engine
/// reuses the same parked threads.
///
/// Sizing: the `EBV_POOL_SIZE` environment variable (read once, at first
/// use) when set to a positive integer — parsed by
/// [`config::parse_pool_size`](crate::config::parse_pool_size), so a
/// malformed value panics loudly instead of silently falling back —
/// otherwise [`std::thread::available_parallelism`].
pub fn shared_worker_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(shared_pool_size()))
}

/// Resolves the shared pool's size from `EBV_POOL_SIZE` / the host.
///
/// # Panics
///
/// Panics on a malformed `EBV_POOL_SIZE` (zero, negative, non-numeric): a
/// mis-sized pool would silently skew every threaded measurement.
fn shared_pool_size() -> usize {
    match std::env::var(crate::config::ENV_POOL_SIZE) {
        Ok(value) => match crate::config::parse_pool_size(&value) {
            Ok(n) => n,
            Err(err) => panic!("{err}"),
        },
        Err(_) => thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Turns a captured panic payload into a readable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "worker thread panicked".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn tasks_run_and_borrow_caller_state() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Vec<PoolTask<'_>>> = (0..2)
            .map(|lane| {
                (0..5)
                    .map(|i| PoolTask {
                        worker: lane * 5 + i,
                        run: Box::new(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }),
                    })
                    .collect()
            })
            .collect();
        let panics = pool.run_tasks(tasks);
        assert!(panics.is_empty());
        // `run_tasks` returning proves every task completed.
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panics_are_attributed_per_task_in_worker_order() {
        let pool = WorkerPool::new(1);
        // Three tasks on one lane; the middle and last panic. Both must be
        // reported, exactly attributed, in ascending worker order — and the
        // lane must survive to run the non-panicking task in between.
        let ran = AtomicUsize::new(0);
        let tasks = vec![vec![
            PoolTask {
                worker: 7,
                run: Box::new(|| panic!("seven exploded")),
            },
            PoolTask {
                worker: 3,
                run: Box::new(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                }),
            },
            PoolTask {
                worker: 5,
                run: Box::new(|| panic!("five exploded")),
            },
        ]];
        let panics = pool.run_tasks(tasks);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(panics.len(), 2);
        assert_eq!(panics[0], (5, "five exploded".to_string()));
        assert_eq!(panics[1], (7, "seven exploded".to_string()));
    }

    #[test]
    fn ten_rounds_reuse_the_same_lanes() {
        // The per-process spawn counter is asserted in a single-test
        // integration binary (`crates/dynamic/tests/pool_reuse.rs`) where
        // no concurrent test creates pools; here we prove ten back-to-back
        // batches on one pool all complete and stay exactly attributed.
        let pool = WorkerPool::new(3);
        for round in 0..10 {
            let hits = AtomicUsize::new(0);
            let tasks = vec![
                vec![PoolTask {
                    worker: 0,
                    run: Box::new(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }),
                }],
                vec![PoolTask {
                    worker: 1,
                    run: Box::new(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }),
                }],
            ];
            assert!(pool.run_tasks(tasks).is_empty(), "round {round}");
            assert_eq!(hits.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn panic_messages_are_readable() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new("boom".to_string())), "boom");
        assert_eq!(panic_message(Box::new(42u32)), "worker thread panicked");
    }
}
