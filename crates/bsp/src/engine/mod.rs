//! The bulk-synchronous-parallel execution engine.
//!
//! The module tree splits the engine along its seams:
//!
//! * `mod` (this file) — the public [`BspEngine`] API and the superstep
//!   loop: seeding, the quiescence/convergence protocol, statistics and
//!   result extraction;
//! * [`executor`] — the [`SuperstepExecutor`] trait: how one superstep's
//!   independent worker tasks are placed (sequential, pooled, legacy
//!   spawn-per-step), and the seam a multi-process transport plugs into;
//! * [`pool`] — the persistent [`WorkerPool`]: fixed threads parked across
//!   supersteps and (for the shared pool) across runs and mutation epochs,
//!   tasks handed over `std::sync::mpsc` channels, exact per-task panic
//!   attribution, graceful join on drop;
//! * [`schedule`] — the work-aware LPT scheduler that chunks workers onto
//!   pool lanes by estimated cost (CSR edge counts + the previous
//!   superstep's live `work` counters) instead of count-even.

mod executor;
mod pool;
mod schedule;

pub use executor::{
    PooledExecutor, SequentialExecutor, SpawnPerStepExecutor, StepOutcome, SuperstepExecutor,
    WorkerTask,
};
pub use pool::{pool_threads_spawned, shared_worker_pool, WorkerPool};

use ebv_graph::VertexId;
use ebv_obs::{NoopRecorder, Phase, Recorder, SpanCtx};

use crate::error::{BspError, Result};
use crate::exchange::{self, MessagePlane};
use crate::program::{SubgraphContext, SubgraphProgram};
use crate::publish::ValueSink;
use crate::stats::{ExecutionStats, SuperstepStats, WorkerSuperstepStats};
use crate::subgraph::DistributedGraph;

/// Options for one engine run — the single entry point that replaces the
/// `run` / `run_with` / `run_warm` / `run_warm_with` × recorder × mode
/// sprawl (those four remain as thin forwarders onto
/// [`BspEngine::run_opts`]).
///
/// `V` is the program's value type, `R` the recorder
/// ([`NoopRecorder`] until [`recorder`](RunOptions::recorder) swaps it —
/// statically, so an untelemetered run still pays nothing).
///
/// # Examples
///
/// ```
/// use ebv_bsp::{BspEngine, ExecutionMode, RunOptions};
///
/// // Equivalent to `engine.run_warm(&dg, &program, &prior)`, but with a
/// // per-run mode override — no second engine needed:
/// # fn demo(prior: &[u64]) {
/// let _options: RunOptions<'_, u64> = RunOptions::new()
///     .warm_seed(prior)
///     .mode(ExecutionMode::Sequential);
/// # }
/// # demo(&[0]);
/// ```
#[derive(Clone, Copy)]
pub struct RunOptions<'a, V, R: Recorder = NoopRecorder> {
    /// Per-run override of the engine's [`ExecutionMode`].
    mode: Option<ExecutionMode>,
    /// Telemetry destination for phase spans and counters.
    recorder: &'a R,
    /// Warm-start seed: a previous epoch's global values.
    warm: Option<&'a [V]>,
    /// Snapshot publication: receives the finished run's values.
    sink: Option<&'a dyn ValueSink<V>>,
}

impl<V> Default for RunOptions<'_, V, NoopRecorder> {
    fn default() -> Self {
        RunOptions::new()
    }
}

impl<V> RunOptions<'_, V, NoopRecorder> {
    /// Options for a plain cold run: engine-configured mode, no telemetry,
    /// no warm seed, no publication.
    pub fn new() -> Self {
        RunOptions {
            mode: None,
            recorder: &NoopRecorder,
            warm: None,
            sink: None,
        }
    }
}

impl<'a, V, R: Recorder> RunOptions<'a, V, R> {
    /// Overrides the engine's [`ExecutionMode`] for this run only.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Reports phase spans (gather, compute, scatter, barrier) and message
    /// counters through `recorder`. Instrumentation does not perturb
    /// execution: values and [`ExecutionStats`] stay bit-identical.
    pub fn recorder<R2: Recorder>(self, recorder: &'a R2) -> RunOptions<'a, V, R2> {
        RunOptions {
            mode: self.mode,
            recorder,
            warm: self.warm,
            sink: self.sink,
        }
    }

    /// Warm-starts the run from `prior` — the global per-vertex values of a
    /// previous epoch's [`BspOutcome`] — instead of
    /// [`SubgraphProgram::initial_value`]. See
    /// [`BspEngine::run_warm`] for the seeding rules.
    pub fn warm_seed(mut self, prior: &'a [V]) -> Self {
        self.warm = Some(prior);
        self
    }

    /// Publishes the finished run's global values (and its
    /// [`ExecutionStats`]) to `sink` before returning — the engine half of
    /// epoch-snapshot publication (see [`crate::publish`]).
    pub fn publish_to(mut self, sink: &'a dyn ValueSink<V>) -> Self {
        self.sink = Some(sink);
        self
    }
}

/// The per-worker slice of engine state one superstep works on.
struct WorkerPart<'a, V, M> {
    subgraph: &'a crate::subgraph::Subgraph,
    routes: &'a crate::routing::WorkerRoutes,
    values: &'a mut Vec<V>,
    inbox: &'a mut exchange::Inbox<M>,
    /// This worker's row of the gather-side shard matrix (messages routed
    /// to it at the end of the previous superstep, by source worker).
    inbound: &'a mut Vec<Vec<(u32, M)>>,
    outbox: &'a mut Vec<exchange::OutboxEntry<M>>,
    /// This worker's row of the scatter-side shard matrix (messages it
    /// routes this superstep, by destination worker).
    outbound: &'a mut Vec<Vec<(u32, M)>>,
    /// `(work, changes, sent)` of the superstep.
    result: &'a mut Option<(u64, usize, usize)>,
}

/// One worker's whole superstep: merge the shards routed to this worker at
/// the end of the previous superstep into the flat inbox (gather), run the
/// program over the subgraph (compute), then fan the outbox out into the
/// worker's own row of per-destination shards along the precomputed routes
/// (scatter). Touches only worker-local state, so every executor runs it
/// lock-free; ownership of the part (and with it the worker's shard rows)
/// moves into the task an executor places.
fn run_worker<P: SubgraphProgram, R: Recorder>(
    program: &P,
    superstep: usize,
    epoch: u32,
    recorder: &R,
    part: WorkerPart<'_, P::Value, P::Message>,
) {
    let span_ctx = SpanCtx {
        epoch,
        superstep: superstep as u32,
        worker: part.subgraph.part().index() as u32,
    };
    let started = recorder.start();
    part.inbox.fill(part.inbound);
    recorder.span(started, span_ctx, Phase::Gather);

    let started = recorder.start();
    let mut ctx = SubgraphContext::new(part.subgraph, part.values, part.inbox.view(), part.outbox);
    program.run_superstep(&mut ctx, superstep);
    let (work, changes) = ctx.finish();
    recorder.span(started, span_ctx, Phase::Compute);

    let started = recorder.start();
    let sent = exchange::scatter(part.routes, part.subgraph, part.outbox, part.outbound);
    recorder.span(started, span_ctx, Phase::Scatter);
    *part.result = Some((work, changes, sent));
}

/// How the workers of a superstep are executed.
///
/// Every mode is bit-identical to every other in program values and
/// [`ExecutionStats`] — workers are independent within a superstep and the
/// engine folds their results in worker order — so the choice is purely a
/// performance/debuggability trade-off, and the mode-equivalence property
/// suites gate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Workers run one after another on the calling thread. Deterministic
    /// reference mode; the statistics are identical to the parallel modes.
    #[default]
    Sequential,
    /// Workers run on the process-wide persistent [`WorkerPool`] (sized by
    /// `EBV_POOL_SIZE` or the host's available parallelism), placed by the
    /// work-aware LPT scheduler. The pool outlives runs, so warm mutation
    /// epochs pay zero thread-spawn cost.
    Threaded,
    /// Workers run on a run-local pool of exactly this many threads
    /// (`0` is clamped to `1`): created once per `run`/`run_warm`, joined
    /// when the run finishes. The property suites sweep this mode over
    /// pool sizes to prove placement-independence.
    Pooled(usize),
    /// PR 5's legacy placement — count-even chunks, one scoped OS thread
    /// spawned per chunk per superstep — kept as the measured floor for
    /// the pool's spawn-amortization benchmark.
    SpawnPerStep,
}

/// The subgraph-centric BSP engine.
///
/// The engine drives a [`SubgraphProgram`] over a [`DistributedGraph`]
/// through the three stages of each superstep described in Section IV-B of
/// the paper: computation (each worker runs the sequential algorithm on its
/// subgraph), communication (replica messages are routed between workers)
/// and synchronization (a barrier). It records the per-worker work and
/// message counters that the evaluation tables are built from.
///
/// # Examples
///
/// ```
/// use ebv_bsp::{BspEngine, DistributedGraph};
/// use ebv_graph::generators::named;
/// use ebv_partition::{EbvPartitioner, Partitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = named::two_triangles();
/// let partition = EbvPartitioner::new().partition(&graph, 2)?;
/// let distributed = DistributedGraph::build(&graph, &partition)?;
/// // `ebv-algorithms` provides ready-made programs (CC, SSSP, PageRank).
/// assert_eq!(distributed.num_workers(), 2);
/// let _engine = BspEngine::sequential();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BspEngine {
    mode: ExecutionMode,
}

/// The result of executing a program: the global per-vertex values (taken
/// from each vertex's master replica) plus the execution counters.
#[derive(Debug, Clone)]
pub struct BspOutcome<V> {
    /// Final value of every vertex, indexed by vertex id.
    pub values: Vec<V>,
    /// Per-superstep, per-worker counters.
    pub stats: ExecutionStats,
    /// Number of supersteps executed.
    pub supersteps: usize,
}

impl BspEngine {
    /// Creates an engine that runs workers sequentially.
    pub fn sequential() -> Self {
        BspEngine {
            mode: ExecutionMode::Sequential,
        }
    }

    /// Creates an engine that runs workers on the shared persistent pool
    /// (see [`ExecutionMode::Threaded`]).
    pub fn threaded() -> Self {
        BspEngine {
            mode: ExecutionMode::Threaded,
        }
    }

    /// Creates an engine that runs workers on a run-local pool of exactly
    /// `threads` threads (see [`ExecutionMode::Pooled`]).
    pub fn pooled(threads: usize) -> Self {
        BspEngine {
            mode: ExecutionMode::Pooled(threads),
        }
    }

    /// Creates an engine using the legacy spawn-per-superstep placement
    /// (see [`ExecutionMode::SpawnPerStep`]) — the benchmark floor.
    pub fn spawn_per_step() -> Self {
        BspEngine {
            mode: ExecutionMode::SpawnPerStep,
        }
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Executes `program` over `distributed` until quiescence (or the
    /// program's superstep limit for fixed-iteration programs).
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run<P: SubgraphProgram>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
    ) -> Result<BspOutcome<P::Value>> {
        self.run_opts(distributed, program, RunOptions::new())
    }

    /// [`run`](BspEngine::run) with telemetry: phase spans (gather,
    /// compute, scatter per worker; barrier per superstep) and message
    /// counters are reported through `recorder`.
    ///
    /// Instrumentation does not perturb execution: values and
    /// [`ExecutionStats`] are bit-identical to an uninstrumented run.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_with<P: SubgraphProgram, R: Recorder>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        recorder: &R,
    ) -> Result<BspOutcome<P::Value>> {
        self.run_opts(distributed, program, RunOptions::new().recorder(recorder))
    }

    /// Executes `program` warm-started from `prior` — the global per-vertex
    /// values of a previous epoch's [`BspOutcome`] — instead of from
    /// [`SubgraphProgram::initial_value`].
    ///
    /// Every replica of vertex `v` with `v < prior.len()` is seeded with
    /// [`SubgraphProgram::warm_value`]`(v, &prior[v], subgraph)`; vertices
    /// beyond `prior` (the universe may have grown across mutation epochs)
    /// fall back to `initial_value`. Combined with an incremental program
    /// (e.g. `ebv_algorithms::IncrementalConnectedComponents`) this re-runs
    /// a fixpoint from the previous epoch's answer, activating only the
    /// region the mutations disturbed.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_warm<P: SubgraphProgram>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        prior: &[P::Value],
    ) -> Result<BspOutcome<P::Value>> {
        self.run_opts(distributed, program, RunOptions::new().warm_seed(prior))
    }

    /// [`run_warm`](BspEngine::run_warm) with telemetry — see
    /// [`run_with`](BspEngine::run_with) for the spans and the
    /// determinism guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_warm_with<P: SubgraphProgram, R: Recorder>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        prior: &[P::Value],
        recorder: &R,
    ) -> Result<BspOutcome<P::Value>> {
        self.run_opts(
            distributed,
            program,
            RunOptions::new().warm_seed(prior).recorder(recorder),
        )
    }

    /// The executor implementing `mode`. Created once per run: a run-local
    /// pool spawns its threads here and joins them when the box drops; the
    /// shared pool is only borrowed.
    fn executor_for(mode: ExecutionMode) -> Box<dyn SuperstepExecutor> {
        match mode {
            ExecutionMode::Sequential => Box::new(SequentialExecutor),
            ExecutionMode::Threaded => Box::new(PooledExecutor::shared()),
            ExecutionMode::Pooled(threads) => Box::new(PooledExecutor::own(threads)),
            ExecutionMode::SpawnPerStep => Box::new(SpawnPerStepExecutor),
        }
    }

    /// Executes `program` over `distributed` with explicit [`RunOptions`] —
    /// the one true entry point; `run`, `run_with`, `run_warm` and
    /// `run_warm_with` all forward here.
    ///
    /// When [`RunOptions::publish_to`] is set, the finished run's global
    /// values and [`ExecutionStats`] are handed to the sink *before* this
    /// returns, so a snapshot store has staged the values by the time the
    /// caller sees the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`BspError::DidNotConverge`] when a quiescence-halting program
    /// exhausts [`SubgraphProgram::max_supersteps`].
    pub fn run_opts<P: SubgraphProgram, R: Recorder>(
        &self,
        distributed: &DistributedGraph,
        program: &P,
        options: RunOptions<'_, P::Value, R>,
    ) -> Result<BspOutcome<P::Value>> {
        let mode = options.mode.unwrap_or(self.mode);
        let recorder = options.recorder;
        let prior = options.warm;
        let num_workers = distributed.num_workers();
        if num_workers == 0 {
            return Err(BspError::InvalidParameter {
                parameter: "distributed",
                message: "the distributed graph has no workers".to_string(),
            });
        }
        let routing = distributed.routing();
        debug_assert_eq!(
            routing.epoch(),
            distributed.epoch(),
            "routing table is stale"
        );

        // Cold runs seed from `initial_value`, warm runs from `warm_value`
        // over the previous epoch's outcome.
        let seed = |v: ebv_graph::VertexId, sg: &crate::subgraph::Subgraph| -> P::Value {
            match prior {
                Some(prior) if v.index() < prior.len() => {
                    program.warm_value(v, &prior[v.index()], sg)
                }
                _ => program.initial_value(v, sg),
            }
        };

        // Per-worker local state; every message buffer lives in the plane
        // and is reused across supersteps (steady-state supersteps perform
        // no per-message allocation).
        let mut values: Vec<Vec<P::Value>> = distributed
            .subgraphs()
            .iter()
            .map(|sg| sg.vertices().iter().map(|&v| seed(v, sg)).collect())
            .collect();
        let mut plane: MessagePlane<P::Message> =
            MessagePlane::new(distributed.subgraphs().iter().map(|sg| sg.num_vertices()));

        let mutation = distributed.last_mutation();
        let mut stats = ExecutionStats {
            num_workers,
            epoch: distributed.epoch(),
            workers_touched: mutation.workers_touched,
            edges_rebuilt: mutation.edges_rebuilt,
            supersteps: Vec::new(),
        };

        let max_supersteps = program.max_supersteps();
        let mut converged = false;
        let mut executed = 0usize;
        let epoch = distributed.epoch() as u32;
        // Engine-side (barrier) spans use worker == p by convention.
        let engine_worker = num_workers as u32;
        let mut executor = Self::executor_for(mode);
        // Reused across supersteps: per-destination delivery counts.
        let mut received: Vec<usize> = Vec::with_capacity(num_workers);

        for superstep in 0..max_supersteps {
            // --- Worker phase: gather + computation + scatter ----------------------
            // Each worker merges the shards routed to it at the end of the
            // previous superstep into its flat inbox (exchange phase two,
            // pipelined into the next superstep so the whole superstep is
            // one parallel phase), runs the program over its subgraph, and
            // fans its outbox out into its own row of per-destination
            // shards along the precomputed routes (exchange phase one) —
            // purely worker-local state, packaged as one task per worker
            // and handed to the executor, which owns placement.
            //
            // The scheduler's cost estimate blends each subgraph's static
            // CSR edge count with the worker's live `work` counter from
            // the previous superstep, so both structural skew (R-MAT hubs)
            // and frontier skew (worklist algorithms) re-balance within
            // one superstep. Placement cannot affect results.
            let costs: Vec<u64> = {
                let last = stats.supersteps.last();
                distributed
                    .subgraphs()
                    .iter()
                    .enumerate()
                    .map(|(worker, sg)| {
                        let live = last.map_or(0, |s| s.per_worker[worker].work);
                        sg.num_edges() as u64 + 1 + live
                    })
                    .collect()
            };
            let mut results: Vec<Option<(u64, usize, usize)>> = vec![None; num_workers];
            {
                let parts = distributed
                    .subgraphs()
                    .iter()
                    .zip(routing.worker_tables())
                    .zip(values.iter_mut())
                    .zip(plane.inboxes.iter_mut())
                    .zip(plane.in_shards.iter_mut())
                    .zip(plane.outboxes.iter_mut())
                    .zip(plane.out_shards.iter_mut())
                    .zip(results.iter_mut())
                    .map(
                        |(
                            ((((((subgraph, routes), values), inbox), inbound), outbox), outbound),
                            result,
                        )| WorkerPart {
                            subgraph,
                            routes,
                            values,
                            inbox,
                            inbound,
                            outbox,
                            outbound,
                            result,
                        },
                    );
                let tasks: Vec<WorkerTask<'_>> = parts
                    .map(|part| {
                        let worker = part.subgraph.part().index();
                        // Queue-wait: sampled at submission, observed when
                        // the task starts on its lane. Free under the
                        // no-op recorder (`start()` returns `None`).
                        let enqueued = recorder.start();
                        WorkerTask {
                            worker,
                            cost: costs[worker],
                            run: Box::new(move || {
                                if let Some(started) = enqueued {
                                    recorder.observe_seconds(
                                        "ebv_bsp_pool_queue_wait_seconds",
                                        started.elapsed().as_secs_f64(),
                                    );
                                }
                                run_worker(program, superstep, epoch, recorder, part);
                            }),
                        }
                    })
                    .collect();
                let step = executor.execute(tasks);
                if let Some((worker, message)) = step.panics.into_iter().next() {
                    // Every executor attributes panics exactly per task;
                    // report the lowest panicking worker.
                    return Err(BspError::WorkerPanicked { worker, message });
                }
                recorder.gauge_set("ebv_bsp_pool_chunk_workers", step.max_lane_workers as f64);
            }

            // --- Exchange hand-off -------------------------------------------------
            // Hand this superstep's scattered shards to the destination
            // side (a `Vec` swap per cell, no message moves); destinations
            // merge them at the start of the next superstep, in ascending
            // source order, so values and counters are identical across
            // modes. The per-destination delivery counts fall out of the
            // same pass — no message needs to be touched to count them.
            let barrier_started = recorder.start();
            plane.transpose_into(&mut received);

            // --- Statistics / synchronization --------------------------------------
            let mut superstep_stats = SuperstepStats {
                per_worker: vec![WorkerSuperstepStats::default(); num_workers],
            };
            let mut total_messages = 0usize;
            let mut total_changes = 0usize;
            for (worker, result) in results.into_iter().enumerate() {
                let (work, changes, sent) = result.expect("worker produced a result");
                let per_worker = &mut superstep_stats.per_worker[worker];
                per_worker.work = work;
                per_worker.updates = changes;
                per_worker.messages_sent = sent;
                per_worker.messages_received = received[worker];
                total_changes += changes;
                total_messages += sent;
            }
            stats.supersteps.push(superstep_stats);
            executed = superstep + 1;
            recorder.span(
                barrier_started,
                SpanCtx {
                    epoch,
                    superstep: superstep as u32,
                    worker: engine_worker,
                },
                Phase::Barrier,
            );
            recorder.counter_add("ebv_bsp_messages_total", total_messages as u64);
            recorder.counter_add("ebv_bsp_supersteps_total", 1);

            if program.halt_on_quiescence() && total_messages == 0 && total_changes == 0 {
                converged = true;
                break;
            }
        }

        if program.halt_on_quiescence() && !converged {
            return Err(BspError::DidNotConverge { max_supersteps });
        }

        // The counted work-skew counterpart of the wall-clock straggler
        // gauge; `max_mean_ratio` is total (1.0 on empty or all-zero
        // input), so zero-work runs cannot emit NaN/inf into /metrics.
        recorder.gauge_set("ebv_bsp_work_max_mean_ratio", stats.work_max_mean_ratio());

        // Extract the global result from each vertex's master replica via
        // the precomputed master-location array (no per-vertex hash
        // probes).
        let global_values: Vec<P::Value> = (0..distributed.num_vertices())
            .map(|raw| match routing.master_location(raw) {
                Some((worker, local)) => values[worker][local].clone(),
                // Vertices absent from every subgraph report their seed
                // value (initial for cold runs, warm for warm runs).
                None => {
                    let v = VertexId::from(raw);
                    let sg = distributed.subgraph(distributed.replicas().master_of(v));
                    seed(v, sg)
                }
            })
            .collect();

        let outcome = BspOutcome {
            values: global_values,
            stats,
            supersteps: executed,
        };
        if let Some(sink) = options.sink {
            sink.publish(&outcome.values, &outcome.stats);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SubgraphContext;
    use crate::subgraph::Subgraph;
    use ebv_graph::generators::named;
    use ebv_graph::{Graph, VertexId};
    use ebv_partition::{EbvPartitioner, Partitioner};

    /// Minimal test program: propagate the minimum vertex id over the graph
    /// (a toy connected-components kernel defined inline so the engine can
    /// be tested without depending on `ebv-algorithms`).
    struct MinLabel;

    impl SubgraphProgram for MinLabel {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "min-label".to_string()
        }

        fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            vertex.raw()
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            let n = ctx.subgraph().num_vertices();
            // Merge incoming replica values.
            let mut changed: Vec<bool> = vec![false; n];
            for (i, was_changed) in changed.iter_mut().enumerate() {
                let incoming_min = ctx.messages(i).iter().copied().min();
                if let Some(m) = incoming_min {
                    if m < *ctx.value(i) {
                        ctx.set_value(i, m);
                        *was_changed = true;
                    }
                }
            }
            // Local propagation until fixpoint.
            loop {
                let mut any = false;
                for e in 0..ctx.subgraph().num_edges() {
                    let edge = ctx.subgraph().edges()[e];
                    let (Some(s), Some(d)) = (
                        ctx.subgraph().local_index_of(edge.src),
                        ctx.subgraph().local_index_of(edge.dst),
                    ) else {
                        continue;
                    };
                    ctx.add_work(1);
                    let sv = *ctx.value(s);
                    let dv = *ctx.value(d);
                    let min = sv.min(dv);
                    if sv > min {
                        ctx.set_value(s, min);
                        changed[s] = true;
                        any = true;
                    }
                    if dv > min {
                        ctx.set_value(d, min);
                        changed[d] = true;
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            // Ship changed boundary values to the other replicas.
            for (i, &was_changed) in changed.iter().enumerate() {
                if was_changed {
                    let value = *ctx.value(i);
                    ctx.send_to_replicas(i, value);
                }
            }
            changed.iter().filter(|&&c| c).count()
        }
    }

    fn run_min_label(graph: &Graph, p: usize, engine: BspEngine) -> BspOutcome<u64> {
        let partition = EbvPartitioner::new().partition(graph, p).unwrap();
        let dg = DistributedGraph::build(graph, &partition).unwrap();
        engine.run(&dg, &MinLabel).unwrap()
    }

    #[test]
    fn min_label_converges_on_two_triangles() {
        let g = named::two_triangles();
        let outcome = run_min_label(&g, 2, BspEngine::sequential());
        assert_eq!(outcome.values, vec![0, 0, 0, 3, 3, 3]);
        assert!(outcome.supersteps >= 1);
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let g = named::small_social_graph();
        let seq = run_min_label(&g, 4, BspEngine::sequential());
        let thr = run_min_label(&g, 4, BspEngine::threaded());
        assert_eq!(seq.values, thr.values);
        // The whole counter structure — per worker, per superstep — is
        // bit-identical, not just the totals.
        assert_eq!(seq.stats, thr.stats);
        assert_eq!(seq.supersteps, thr.supersteps);
        assert_eq!(BspEngine::threaded().mode(), ExecutionMode::Threaded);
    }

    #[test]
    fn every_mode_agrees_with_sequential() {
        let g = named::small_social_graph();
        let seq = run_min_label(&g, 4, BspEngine::sequential());
        for engine in [
            BspEngine::pooled(1),
            BspEngine::pooled(2),
            BspEngine::pooled(4),
            BspEngine::pooled(7),
            // `Pooled(0)` is clamped to one thread rather than rejected.
            BspEngine::pooled(0),
            BspEngine::spawn_per_step(),
        ] {
            let other = run_min_label(&g, 4, engine);
            assert_eq!(seq.values, other.values, "{:?}", engine.mode());
            assert_eq!(seq.stats, other.stats, "{:?}", engine.mode());
            assert_eq!(seq.supersteps, other.supersteps, "{:?}", engine.mode());
        }
        assert_eq!(BspEngine::pooled(3).mode(), ExecutionMode::Pooled(3));
        assert_eq!(
            BspEngine::spawn_per_step().mode(),
            ExecutionMode::SpawnPerStep
        );
    }

    /// A program that panics on a fixed set of workers: the engine must
    /// surface a typed error instead of aborting the process.
    struct PanicsOnWorkers(&'static [usize]);

    impl SubgraphProgram for PanicsOnWorkers {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "panics".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            let worker = ctx.subgraph().part().index();
            if self.0.contains(&worker) {
                panic!("worker {worker} exploded");
            }
            0
        }
    }

    #[test]
    fn threaded_worker_panics_surface_as_typed_errors() {
        let g = named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 4).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let err = BspEngine::threaded()
            .run(&dg, &PanicsOnWorkers(&[1]))
            .unwrap_err();
        match err {
            BspError::WorkerPanicked { worker, message } => {
                assert_eq!(worker, 1);
                assert_eq!(message, "worker 1 exploded");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    /// Regression for the PR 5 first-missing-result attribution: with two
    /// panicking workers forced into the *same* lane (pool size 1) the
    /// error must name the lowest panicking worker with its own message —
    /// exactly, not by chunk-position inference.
    #[test]
    fn two_panics_in_one_chunk_attribute_the_lowest_worker_exactly() {
        let g = named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 4).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        for engine in [
            BspEngine::pooled(1),
            BspEngine::pooled(4),
            BspEngine::spawn_per_step(),
            BspEngine::sequential(),
        ] {
            let err = engine.run(&dg, &PanicsOnWorkers(&[2, 1])).unwrap_err();
            match err {
                BspError::WorkerPanicked { worker, message } => {
                    assert_eq!(worker, 1, "{:?}", engine.mode());
                    assert_eq!(message, "worker 1 exploded", "{:?}", engine.mode());
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_worker_sends_no_messages() {
        let g = named::two_triangles();
        let outcome = run_min_label(&g, 1, BspEngine::sequential());
        assert_eq!(outcome.stats.total_messages(), 0);
        assert_eq!(outcome.values, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn stats_record_work_and_messages() {
        let g = named::small_social_graph();
        let outcome = run_min_label(&g, 4, BspEngine::sequential());
        assert!(outcome.stats.total_work() > 0);
        assert!(outcome.stats.total_messages() > 0);
        assert_eq!(outcome.stats.num_workers, 4);
        assert_eq!(outcome.stats.num_supersteps(), outcome.supersteps);
    }

    /// A program that never converges must hit the superstep limit.
    struct NeverConverges;

    impl SubgraphProgram for NeverConverges {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "never".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            superstep: usize,
        ) -> usize {
            ctx.set_value(0, superstep as u64);
            1
        }

        fn max_supersteps(&self) -> usize {
            5
        }
    }

    #[test]
    fn non_convergence_is_reported() {
        let g = named::two_triangles();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let err = BspEngine::sequential()
            .run(&dg, &NeverConverges)
            .unwrap_err();
        assert!(matches!(
            err,
            BspError::DidNotConverge { max_supersteps: 5 }
        ));
    }

    /// A fixed-iteration program runs exactly `max_supersteps` supersteps.
    struct FixedIterations;

    impl SubgraphProgram for FixedIterations {
        type Value = u64;
        type Message = u64;

        fn name(&self) -> String {
            "fixed".to_string()
        }

        fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> u64 {
            0
        }

        fn run_superstep(
            &self,
            ctx: &mut SubgraphContext<'_, u64, u64>,
            _superstep: usize,
        ) -> usize {
            let current = *ctx.value(0);
            ctx.set_value(0, current + 1);
            1
        }

        fn max_supersteps(&self) -> usize {
            7
        }

        fn halt_on_quiescence(&self) -> bool {
            false
        }
    }

    #[test]
    fn run_opts_mode_override_agrees_and_publishes() {
        use crate::publish::ValueSink;
        use std::sync::Mutex;

        struct Captured {
            published: Mutex<Vec<(Vec<u64>, usize)>>,
        }
        impl ValueSink<u64> for Captured {
            fn publish(&self, values: &[u64], stats: &ExecutionStats) {
                self.published
                    .lock()
                    .unwrap()
                    .push((values.to_vec(), stats.num_supersteps()));
            }
        }

        let g = named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 4).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let baseline = BspEngine::sequential().run(&dg, &MinLabel).unwrap();

        // A threaded engine overridden to sequential per run, publishing.
        let sink = Captured {
            published: Mutex::new(Vec::new()),
        };
        let outcome = BspEngine::threaded()
            .run_opts(
                &dg,
                &MinLabel,
                RunOptions::new()
                    .mode(ExecutionMode::Sequential)
                    .publish_to(&sink),
            )
            .unwrap();
        assert_eq!(outcome.values, baseline.values);
        assert_eq!(outcome.stats, baseline.stats);
        // The sink saw exactly the returned values, before `run_opts`
        // returned.
        let published = sink.published.lock().unwrap();
        assert_eq!(published.len(), 1);
        assert_eq!(published[0].0, outcome.values);
        assert_eq!(published[0].1, outcome.stats.num_supersteps());
    }

    #[test]
    fn run_opts_warm_seed_matches_run_warm() {
        let g = named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&g, 3).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let cold = BspEngine::sequential().run(&dg, &MinLabel).unwrap();
        let via_wrapper = BspEngine::sequential()
            .run_warm(&dg, &MinLabel, &cold.values)
            .unwrap();
        let via_options = BspEngine::sequential()
            .run_opts(&dg, &MinLabel, RunOptions::new().warm_seed(&cold.values))
            .unwrap();
        assert_eq!(via_wrapper.values, via_options.values);
        assert_eq!(via_wrapper.stats, via_options.stats);
    }

    #[test]
    fn fixed_iteration_programs_run_to_their_limit() {
        let g = named::two_triangles();
        let partition = EbvPartitioner::new().partition(&g, 2).unwrap();
        let dg = DistributedGraph::build(&g, &partition).unwrap();
        let outcome = BspEngine::sequential().run(&dg, &FixedIterations).unwrap();
        assert_eq!(outcome.supersteps, 7);
    }
}
