//! Work-aware superstep scheduling: chunk workers onto pool lanes by
//! estimated cost instead of count-even.
//!
//! The paper's EBV partitioner balances per-worker load *statically*; at
//! run time the engine still has to place `p` worker tasks onto `t ≤ p`
//! pool threads, and a count-even split strands the hub-heavy subgraph of a
//! skewed R-MAT distribution behind light siblings on the same thread —
//! PR 7's `ebv_bsp_straggler_ratio` gauge measures exactly that barrier
//! skew. The scheduler here uses the classic LPT (longest processing time
//! first) greedy: sort tasks by estimated cost descending, repeatedly give
//! the next task to the least-loaded lane. LPT is a 4/3-approximation of
//! optimal makespan and, crucially, fully deterministic: ties break on the
//! lower task index, then the lower lane index.
//!
//! The cost estimate combines the static CSR edge count of each subgraph
//! with the *live* per-worker `work` counter from the previous superstep's
//! `ExecutionStats` (see `engine::mod`), so a worklist algorithm whose
//! frontier collapses onto one worker reschedules within one superstep.
//!
//! Placement never affects results: workers are independent within a
//! superstep, so values and `ExecutionStats` are bit-identical under every
//! schedule (the mode-equivalence property suites prove this across pool
//! sizes).

/// The lane placement of one superstep's worker tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Schedule {
    /// `lanes[l]` holds the task indices lane `l` runs, in the order the
    /// LPT greedy assigned them (largest first).
    pub(crate) lanes: Vec<Vec<usize>>,
    /// The largest number of tasks any lane was assigned — exported as the
    /// `ebv_bsp_pool_chunk_workers` gauge.
    pub(crate) max_lane_tasks: usize,
}

/// Assigns `costs.len()` tasks onto at most `lanes` lanes with the LPT
/// greedy. Returns one (possibly empty) task list per used lane.
pub(crate) fn lpt_schedule(costs: &[u64], lanes: usize) -> Schedule {
    let used = lanes.min(costs.len()).max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    // Largest cost first; equal costs keep ascending task order.
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then_with(|| a.cmp(&b)));

    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); used];
    let mut loads: Vec<u64> = vec![0; used];
    for task in order {
        let lane = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(l, _)| l)
            .expect("at least one lane");
        assigned[lane].push(task);
        loads[lane] += costs[task];
    }
    let max_lane_tasks = assigned.iter().map(Vec::len).max().unwrap_or(0);
    Schedule {
        lanes: assigned,
        max_lane_tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn makespan(costs: &[u64], schedule: &Schedule) -> u64 {
        schedule
            .lanes
            .iter()
            .map(|lane| lane.iter().map(|&t| costs[t]).sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    fn count_even_makespan(costs: &[u64], lanes: usize) -> u64 {
        // PR 5's placement: contiguous count-even chunks in task order.
        let lanes = lanes.min(costs.len()).max(1);
        let chunk = costs.len().div_ceil(lanes);
        costs
            .chunks(chunk)
            .map(|c| c.iter().sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn every_task_is_placed_exactly_once() {
        let costs = [5u64, 1, 9, 3, 3, 7, 2, 8];
        let schedule = lpt_schedule(&costs, 3);
        assert_eq!(schedule.lanes.len(), 3);
        let mut seen: Vec<usize> = schedule.lanes.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
        assert_eq!(
            schedule.max_lane_tasks,
            schedule.lanes.iter().map(Vec::len).max().unwrap()
        );
    }

    #[test]
    fn hub_worker_gets_its_own_lane() {
        // One hub-heavy subgraph (the R-MAT skew case) plus seven light
        // ones on four lanes: LPT isolates the hub; count-even chains it
        // behind a light sibling.
        let costs = [1000u64, 10, 10, 10, 10, 10, 10, 10];
        let schedule = lpt_schedule(&costs, 4);
        let hub_lane = schedule
            .lanes
            .iter()
            .find(|lane| lane.contains(&0))
            .unwrap();
        assert_eq!(hub_lane, &vec![0], "the hub shares no lane");
        assert!(makespan(&costs, &schedule) < count_even_makespan(&costs, 4));
    }

    #[test]
    fn lpt_never_loses_to_count_even_on_skewed_inputs() {
        let cases: &[(&[u64], usize)] = &[
            (&[100, 1, 1, 1], 2),
            (&[1, 100, 1, 1, 1, 100], 3),
            (&[9, 8, 7, 6, 5, 4, 3, 2, 1], 3),
            (&[5, 5, 5, 5], 2),
            (&[0, 0, 0, 7], 2),
        ];
        for (costs, lanes) in cases {
            let schedule = lpt_schedule(costs, *lanes);
            assert!(
                makespan(costs, &schedule) <= count_even_makespan(costs, *lanes),
                "LPT regressed on {costs:?} over {lanes} lanes"
            );
        }
    }

    #[test]
    fn schedule_is_deterministic_under_ties() {
        let costs = [4u64, 4, 4, 4, 4, 4];
        let a = lpt_schedule(&costs, 3);
        let b = lpt_schedule(&costs, 3);
        assert_eq!(a, b);
        // Equal costs distribute round-robin by ascending task index.
        assert_eq!(a.lanes, vec![vec![0, 3], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    fn degenerate_shapes_are_well_formed() {
        // No tasks: one empty lane, nothing to run.
        let empty = lpt_schedule(&[], 4);
        assert_eq!(empty.lanes, vec![Vec::<usize>::new()]);
        assert_eq!(empty.max_lane_tasks, 0);
        // More lanes than tasks: one task per lane, extra lanes unused.
        let wide = lpt_schedule(&[3, 2], 5);
        assert_eq!(wide.lanes.len(), 2);
        assert_eq!(wide.max_lane_tasks, 1);
        // Single lane: everything in cost order.
        let single = lpt_schedule(&[1, 5, 3], 1);
        assert_eq!(single.lanes, vec![vec![1, 2, 0]]);
    }
}
