//! The [`SuperstepExecutor`] seam: how one superstep's independent worker
//! tasks are placed onto compute resources.
//!
//! The engine (`engine::mod`) prepares one boxed task per worker per
//! superstep — gather + compute + scatter over purely worker-local state —
//! and hands the batch to an executor. Everything above the seam is
//! transport-agnostic: the planned multi-process TCP runtime plugs in here
//! as another `SuperstepExecutor` whose "lanes" are remote worker
//! processes, while every in-process mode below keeps gating it
//! bit-identically.
//!
//! Three implementations ship today:
//!
//! * [`SequentialExecutor`] — tasks run in worker order on the caller
//!   thread (the determinism reference);
//! * [`PooledExecutor`] — tasks run on a persistent [`WorkerPool`], placed
//!   by the work-aware LPT scheduler (`engine::schedule`);
//! * [`SpawnPerStepExecutor`] — PR 5's one-scoped-spawn-per-chunk-per-
//!   superstep placement, kept as the measured floor the pool's
//!   spawn-amortization claim is benchmarked against.
//!
//! Every executor reports per-task panics exactly (worker id + payload) in
//! ascending worker order, and none of them can affect program values or
//! `ExecutionStats`: workers are independent within a superstep, and the
//! engine folds their results in worker order afterwards.

use std::panic::{catch_unwind, AssertUnwindSafe};

use super::pool::{panic_message, shared_worker_pool, PoolTask, WorkerPool};
use super::schedule::lpt_schedule;

/// One worker's whole superstep, packaged for placement: the closure plus
/// the inputs the scheduler places it by.
pub struct WorkerTask<'a> {
    /// Worker (partition) index — panic attribution and result slot.
    pub worker: usize,
    /// Scheduler cost estimate (CSR edge count + previous superstep's
    /// per-worker `work`); never affects results, only placement.
    pub cost: u64,
    /// The gather + compute + scatter closure over worker-local state.
    pub run: Box<dyn FnOnce() + Send + 'a>,
}

/// What one superstep's execution reported back to the engine.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Per-task panics, `(worker, message)` in ascending worker order;
    /// empty when every worker completed.
    pub panics: Vec<(usize, String)>,
    /// The largest number of workers any lane (thread/chunk) ran — the
    /// `ebv_bsp_pool_chunk_workers` gauge.
    pub max_lane_workers: usize,
}

/// Places and runs one superstep's worker tasks.
///
/// Implementations must run every task exactly once before returning and
/// report panics per task; they are free to choose any placement and any
/// per-lane order, because worker tasks share no state within a superstep.
pub trait SuperstepExecutor {
    /// Runs `tasks` (one per worker, in ascending worker order) to
    /// completion and reports the outcome.
    fn execute(&mut self, tasks: Vec<WorkerTask<'_>>) -> StepOutcome;
}

/// Runs tasks in worker order on the calling thread — the reference
/// executor every parallel mode is property-tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl SuperstepExecutor for SequentialExecutor {
    fn execute(&mut self, tasks: Vec<WorkerTask<'_>>) -> StepOutcome {
        let mut outcome = StepOutcome {
            panics: Vec::new(),
            max_lane_workers: tasks.len(),
        };
        for task in tasks {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task.run)) {
                outcome.panics.push((task.worker, panic_message(payload)));
            }
        }
        outcome.panics.sort_unstable_by_key(|&(worker, _)| worker);
        outcome
    }
}

/// Runs tasks on a persistent [`WorkerPool`], placed by the LPT scheduler.
///
/// [`shared`](PooledExecutor::shared) borrows the process-wide pool (the
/// `ExecutionMode::Threaded` path — zero thread spawns after process
/// warm-up, which is what makes warm mutation epochs spawn-free), while
/// [`own`](PooledExecutor::own) creates a run-local pool of an explicit
/// size whose threads are created once per run and joined when the
/// executor drops (the `ExecutionMode::Pooled(n)` path the property suites
/// sweep over).
#[derive(Debug)]
pub struct PooledExecutor {
    pool: PoolHandle,
}

#[derive(Debug)]
enum PoolHandle {
    Shared(&'static WorkerPool),
    Owned(WorkerPool),
}

impl PooledExecutor {
    /// An executor over the process-wide shared pool.
    pub fn shared() -> PooledExecutor {
        PooledExecutor {
            pool: PoolHandle::Shared(shared_worker_pool()),
        }
    }

    /// An executor over its own fresh pool of `threads` threads (clamped
    /// to at least one), joined when the executor drops.
    pub fn own(threads: usize) -> PooledExecutor {
        PooledExecutor {
            pool: PoolHandle::Owned(WorkerPool::new(threads)),
        }
    }

    fn pool(&self) -> &WorkerPool {
        match &self.pool {
            PoolHandle::Shared(pool) => pool,
            PoolHandle::Owned(pool) => pool,
        }
    }
}

impl SuperstepExecutor for PooledExecutor {
    fn execute(&mut self, tasks: Vec<WorkerTask<'_>>) -> StepOutcome {
        let costs: Vec<u64> = tasks.iter().map(|t| t.cost).collect();
        let schedule = lpt_schedule(&costs, self.pool().threads());
        let mut slots: Vec<Option<WorkerTask<'_>>> = tasks.into_iter().map(Some).collect();
        let assignments: Vec<Vec<PoolTask<'_>>> = schedule
            .lanes
            .iter()
            .map(|lane| {
                lane.iter()
                    .map(|&index| {
                        let task = slots[index].take().expect("each task placed once");
                        PoolTask {
                            worker: task.worker,
                            run: task.run,
                        }
                    })
                    .collect()
            })
            .collect();
        StepOutcome {
            panics: self.pool().run_tasks(assignments),
            max_lane_workers: schedule.max_lane_tasks,
        }
    }
}

/// PR 5's placement, kept as the measured spawn-cost floor: count-even
/// contiguous chunks, one scoped thread spawned per chunk per superstep.
///
/// `bench_dynamic`'s `cc_cold_spawn_per_superstep` series runs this
/// executor against `cc_cold_pooled_spawn_free` so the pool's
/// amortization win is a number, not prose.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpawnPerStepExecutor;

impl SuperstepExecutor for SpawnPerStepExecutor {
    fn execute(&mut self, tasks: Vec<WorkerTask<'_>>) -> StepOutcome {
        let num_tasks = tasks.len();
        if num_tasks == 0 {
            return StepOutcome::default();
        }
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(num_tasks)
            .min(num_tasks)
            .max(1);
        let chunk_size = num_tasks.div_ceil(threads);
        let mut chunks: Vec<Vec<WorkerTask<'_>>> = Vec::with_capacity(threads);
        let mut rest = tasks;
        while !rest.is_empty() {
            let tail = rest.split_off(chunk_size.min(rest.len()));
            chunks.push(rest);
            rest = tail;
        }
        let mut panics = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut panics: Vec<(usize, String)> = Vec::new();
                        for task in chunk {
                            if let Err(payload) = catch_unwind(AssertUnwindSafe(task.run)) {
                                panics.push((task.worker, panic_message(payload)));
                            }
                        }
                        panics
                    })
                })
                .collect();
            let mut panics = Vec::new();
            for handle in handles {
                match handle.join() {
                    Ok(chunk_panics) => panics.extend(chunk_panics),
                    // The chunk thread itself died outside a task (cannot
                    // happen today: every task is individually caught).
                    Err(payload) => panics.push((usize::MAX, panic_message(payload))),
                }
            }
            panics
        });
        panics.sort_unstable_by_key(|&(worker, _)| worker);
        StepOutcome {
            panics,
            max_lane_workers: chunk_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_tasks(counter: &AtomicUsize, n: usize) -> Vec<WorkerTask<'_>> {
        (0..n)
            .map(|worker| WorkerTask {
                worker,
                cost: (worker as u64 + 1) * 10,
                run: Box::new(move || {
                    counter.fetch_add(worker + 1, Ordering::Relaxed);
                }),
            })
            .collect()
    }

    fn exercise(executor: &mut dyn SuperstepExecutor) {
        let counter = AtomicUsize::new(0);
        let outcome = executor.execute(counting_tasks(&counter, 6));
        assert!(outcome.panics.is_empty());
        assert!(outcome.max_lane_workers >= 1);
        assert_eq!(counter.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn all_executors_run_every_task() {
        exercise(&mut SequentialExecutor);
        exercise(&mut SpawnPerStepExecutor);
        exercise(&mut PooledExecutor::own(1));
        exercise(&mut PooledExecutor::own(2));
        exercise(&mut PooledExecutor::own(9));
        exercise(&mut PooledExecutor::shared());
    }

    #[test]
    fn executors_attribute_every_panic_in_worker_order() {
        let make_tasks = || -> Vec<WorkerTask<'static>> {
            (0..4)
                .map(|worker| WorkerTask {
                    worker,
                    cost: 1,
                    run: Box::new(move || {
                        if worker % 2 == 1 {
                            panic!("worker {worker} exploded");
                        }
                    }),
                })
                .collect()
        };
        let mut executors: Vec<Box<dyn SuperstepExecutor>> = vec![
            Box::new(SequentialExecutor),
            Box::new(SpawnPerStepExecutor),
            Box::new(PooledExecutor::own(1)),
            Box::new(PooledExecutor::own(3)),
        ];
        for executor in executors.iter_mut() {
            let outcome = executor.execute(make_tasks());
            let expected = vec![
                (1usize, "worker 1 exploded".to_string()),
                (3, "worker 3 exploded".to_string()),
            ];
            assert_eq!(outcome.panics, expected);
        }
    }

    #[test]
    fn empty_superstep_is_a_no_op() {
        for executor in [
            &mut SequentialExecutor as &mut dyn SuperstepExecutor,
            &mut SpawnPerStepExecutor,
            &mut PooledExecutor::own(2),
        ] {
            let outcome = executor.execute(Vec::new());
            assert!(outcome.panics.is_empty());
            assert_eq!(outcome.max_lane_workers, 0);
        }
    }
}
