//! The warm-start harness: shared dirty-set/seed bookkeeping for
//! incremental (re-activation) programs.
//!
//! Every warm-start program built so far — incremental CC, PageRank, SSSP
//! and BFS in `ebv-algorithms` — shares the same epoch shape:
//!
//! 1. **dirty-set computation**: fold the [`MutationBatch`]es applied since
//!    the prior outcome into an algorithm-specific description of which
//!    prior values a deletion may have invalidated;
//! 2. **warm seeding**: hand [`BspEngine::run_warm`](crate::BspEngine::run_warm)
//!    a [`SubgraphProgram::warm_value`](crate::SubgraphProgram::warm_value)
//!    that carries clean prior values over and resets dirty ones to their
//!    cold initial state;
//! 3. **gated re-activation**: activate only the disturbed region (the
//!    endpoints of inserted edges plus whatever the invalidation reset) and
//!    ship only changed values between replicas.
//!
//! [`WarmFrontier`] implements steps 1 and 2 once, parameterized by an
//! [`InvalidationPolicy`] that captures the only part that differs between
//! algorithms: *what a deletion invalidates*. Connected components dirty
//! whole prior component labels (a deletion may split a component); shortest
//! paths dirty every distance at or beyond the settled horizon of the
//! deleted edge (a deletion may lengthen any path through it); PageRank
//! dirties nothing (rank mass re-converges from any starting point). Step 3
//! lives next to the programs in `ebv-algorithms`, which share a gated
//! worklist kernel for the min-propagation algorithms.

use std::collections::HashSet;

use ebv_graph::{Edge, VertexId};

use crate::subgraph::MutationBatch;

/// The algorithm-specific half of a warm start: what one deleted edge
/// invalidates, and whether a given prior value survived the accumulated
/// invalidations.
///
/// Implementations are folded over every [`MutationBatch`] applied since the
/// prior outcome by [`WarmFrontier::absorb`], then queried once per vertex
/// replica at warm-seeding time.
pub trait InvalidationPolicy {
    /// The per-vertex value of the program this policy guards.
    type Value;

    /// Records the consequences of one removed edge copy. `src_prior` and
    /// `dst_prior` are the endpoint values in the prior outcome, or `None`
    /// for endpoints that postdate it (the vertex universe may have grown
    /// across epochs).
    fn on_removed_edge(
        &mut self,
        edge: Edge,
        src_prior: Option<&Self::Value>,
        dst_prior: Option<&Self::Value>,
    );

    /// Whether `prior` (the value of `vertex` in the prior outcome) must be
    /// discarded and re-derived from the vertex's cold initial state.
    fn is_dirty(&self, vertex: VertexId, prior: &Self::Value) -> bool;
}

/// Shared warm-start bookkeeping: the seed frontier (vertices incident to
/// inserted edges) plus an [`InvalidationPolicy`] folded over the removed
/// edges of every absorbed batch.
///
/// A warm-start program owns one `WarmFrontier`, absorbs every
/// [`MutationBatch`] applied since its prior outcome (in any order), and
/// delegates its `warm_value` to [`WarmFrontier::retain`].
#[derive(Debug, Clone, Default)]
pub struct WarmFrontier<P> {
    policy: P,
    seeds: HashSet<u64>,
}

impl<P: InvalidationPolicy> WarmFrontier<P> {
    /// Creates an empty frontier around `policy`: nothing seeded, nothing
    /// invalidated, so a warm run converges immediately when the prior
    /// outcome is still valid.
    pub fn new(policy: P) -> Self {
        WarmFrontier {
            policy,
            seeds: HashSet::new(),
        }
    }

    /// Folds one mutation batch into the frontier. Every batch applied on
    /// top of the graph that produced `prior` must be absorbed before the
    /// warm run.
    ///
    /// Endpoints of inserted edges become seeds (the activation frontier of
    /// the first warm superstep); removed edges are handed to the policy
    /// with their endpoints' prior values. A removed-edge endpoint that
    /// postdates `prior` is also seeded: it starts from its cold initial
    /// value and may still need to propagate it.
    pub fn absorb(&mut self, prior: &[P::Value], batch: &MutationBatch) {
        for &(edge, _) in batch.removed() {
            self.policy.on_removed_edge(
                edge,
                prior.get(edge.src.index()),
                prior.get(edge.dst.index()),
            );
        }
        self.absorb_seeds(prior, batch);
    }

    /// Like [`absorb`](Self::absorb), but only the seed bookkeeping: the
    /// policy never sees the removed edges. For programs that compute a
    /// *precise* invalidation externally (e.g. the SSSP support cone walked
    /// over the distribution itself) instead of folding per-edge
    /// consequences, and install it via [`policy_mut`](Self::policy_mut).
    pub fn absorb_seeds(&mut self, prior: &[P::Value], batch: &MutationBatch) {
        for &(edge, _) in batch.removed() {
            for v in [edge.src, edge.dst] {
                if prior.get(v.index()).is_none() {
                    self.seeds.insert(v.raw());
                }
            }
        }
        for &(edge, _) in batch.added() {
            self.seeds.insert(edge.src.raw());
            self.seeds.insert(edge.dst.raw());
        }
    }

    /// Whether the raw vertex id is part of the seed frontier.
    pub fn is_seed(&self, raw: u64) -> bool {
        self.seeds.contains(&raw)
    }

    /// Number of seed vertices activated in the first warm superstep.
    pub fn seed_vertices(&self) -> usize {
        self.seeds.len()
    }

    /// The policy, for algorithm-specific queries (e.g. dirty counts).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable policy access, for externally computed invalidations (see
    /// [`absorb_seeds`](Self::absorb_seeds)).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The warm-seeding decision: `Some(prior)` if the prior value survived
    /// every absorbed invalidation, `None` if the program must fall back to
    /// the vertex's cold initial value.
    pub fn retain<'v>(&self, vertex: VertexId, prior: &'v P::Value) -> Option<&'v P::Value> {
        if self.policy.is_dirty(vertex, prior) {
            None
        } else {
            Some(prior)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_partition::PartitionId;

    /// A toy policy dirtying any prior equal to the removed edge's src
    /// prior, to observe the plumbing.
    #[derive(Default)]
    struct DirtySrcValue {
        dirty: HashSet<u64>,
    }

    impl InvalidationPolicy for DirtySrcValue {
        type Value = u64;

        fn on_removed_edge(&mut self, _edge: Edge, src: Option<&u64>, _dst: Option<&u64>) {
            if let Some(&v) = src {
                self.dirty.insert(v);
            }
        }

        fn is_dirty(&self, _vertex: VertexId, prior: &u64) -> bool {
            self.dirty.contains(prior)
        }
    }

    #[test]
    fn absorb_routes_insertions_to_seeds_and_removals_to_the_policy() {
        let prior = vec![10u64, 20, 30];
        let mut batch = MutationBatch::new();
        batch.record_insert(Edge::from((0u64, 1u64)), PartitionId::new(0));
        batch.record_delete(Edge::from((2u64, 0u64)), PartitionId::new(1));
        // Endpoint 7 postdates the prior outcome: seeded, not invalidated.
        batch.record_delete(Edge::from((7u64, 1u64)), PartitionId::new(0));

        let mut frontier = WarmFrontier::new(DirtySrcValue::default());
        frontier.absorb(&prior, &batch);

        assert!(frontier.is_seed(0) && frontier.is_seed(1) && frontier.is_seed(7));
        assert!(!frontier.is_seed(2));
        assert_eq!(frontier.seed_vertices(), 3);
        // src prior of (2,0) is 30 → dirty; src prior of (7,1) unknown.
        assert_eq!(frontier.policy().dirty.len(), 1);
        assert!(frontier.retain(VertexId::new(2), &prior[2]).is_none());
        assert_eq!(frontier.retain(VertexId::new(0), &prior[0]), Some(&10));
    }
}
