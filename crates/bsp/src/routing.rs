//! Precomputed message routing: the zero-allocation delivery plan of the
//! communication stage.
//!
//! The engine used to route every outgoing message by probing the replica
//! table (`replicas_of` scan) and the destination subgraph's local-index
//! hash map — per message, per superstep. The [`RoutingTable`] hoists all
//! of that work to assembly time: for every `(worker, local vertex)` it
//! stores a flat slice of [`Route`]s (destination worker + destination
//! local index), laid out so that the three [`MessageTarget`] fan-outs are
//! contiguous sub-slices, plus a per-vertex master-location array that
//! replaces the `master_of` + `local_index_of` probes of final value
//! extraction.
//!
//! The table is **epoch-versioned**: `DistributedGraph::apply_mutations`
//! updates it incrementally in lockstep with the subgraphs (rebuilding
//! routes only for rebuilt workers and batch-affected vertices), so a
//! stale table can be caught by comparing [`RoutingTable::epoch`] with the
//! distribution's epoch.
//!
//! [`MessageTarget`]: crate::program::MessageTarget

use ebv_graph::VertexId;
use ebv_partition::PartitionId;

use crate::subgraph::{ReplicaTable, Subgraph};

/// One delivery destination: the worker holding the replica and the
/// replica's local index inside that worker's subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Route {
    /// Destination worker (partition index).
    pub(crate) worker: u32,
    /// Local index of the vertex inside the destination subgraph.
    pub(crate) local: u32,
}

/// Sentinel for vertices absent from every subgraph.
const ABSENT: Route = Route {
    worker: u32::MAX,
    local: u32::MAX,
};

/// The per-worker half of the routing table: for every local vertex, the
/// flat slice of routes to its *other* replicas.
///
/// Layout invariant: when this worker is **not** the vertex's master, the
/// route to the master comes first and the mirror routes follow in
/// ascending worker order; when this worker **is** the master, the slice
/// holds only mirror routes (ascending). Combined with the subgraph's
/// `is_master` flag this makes all three [`MessageTarget`] fan-outs
/// contiguous sub-slices:
///
/// * `AllReplicas` — the whole slice;
/// * `Master` — the first element (empty if this worker is the master);
/// * `Mirrors` — everything after the master route (the whole slice if
///   this worker is the master).
///
/// [`MessageTarget`]: crate::program::MessageTarget
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct WorkerRoutes {
    /// Route-range offsets per local vertex (length `num_vertices + 1`).
    offsets: Vec<u32>,
    /// Flat route storage.
    routes: Vec<Route>,
}

impl WorkerRoutes {
    /// Builds the full route set of one worker from the replica table.
    fn build(
        worker: usize,
        sg: &Subgraph,
        subgraphs: &[Subgraph],
        replicas: &ReplicaTable,
    ) -> Self {
        let mut offsets = Vec::with_capacity(sg.num_vertices() + 1);
        offsets.push(0u32);
        let mut routes = Vec::new();
        for &v in sg.vertices() {
            push_routes(worker, v, subgraphs, replicas, &mut routes);
            offsets.push(u32::try_from(routes.len()).expect("route count fits u32"));
        }
        WorkerRoutes { offsets, routes }
    }

    /// The routes of the local vertex at `local` (all other replicas).
    #[inline]
    pub(crate) fn all(&self, local: usize) -> &[Route] {
        &self.routes[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }

    /// Re-points the route to `dest_worker` (whose subgraph was rebuilt and
    /// re-indexed) at the vertex's new local index there.
    fn patch_dest(&mut self, local: usize, dest_worker: u32, dest_local: u32) {
        let range = self.offsets[local] as usize..self.offsets[local + 1] as usize;
        for route in &mut self.routes[range] {
            if route.worker == dest_worker {
                route.local = dest_local;
                return;
            }
        }
        debug_assert!(false, "no route to rebuilt worker {dest_worker}");
    }

    /// Replaces the route lists of the given locals (sorted ascending) in
    /// one linear splice pass; all other vertices keep their routes.
    fn splice(&mut self, changes: &[(usize, Vec<Route>)]) {
        debug_assert!(changes.windows(2).all(|w| w[0].0 < w[1].0));
        let n = self.offsets.len() - 1;
        let old_routes = std::mem::take(&mut self.routes);
        let old_offsets = std::mem::take(&mut self.offsets);
        let mut routes = Vec::with_capacity(old_routes.len());
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut pending = changes.iter().peekable();
        for local in 0..n {
            match pending.peek() {
                Some((changed, replacement)) if *changed == local => {
                    routes.extend_from_slice(replacement);
                    pending.next();
                }
                _ => routes.extend_from_slice(
                    &old_routes[old_offsets[local] as usize..old_offsets[local + 1] as usize],
                ),
            }
            offsets.push(u32::try_from(routes.len()).expect("route count fits u32"));
        }
        self.routes = routes;
        self.offsets = offsets;
    }
}

/// Appends the routes of vertex `v` as seen from `worker` (master first
/// when `worker` is not the master, then mirrors in ascending worker
/// order).
fn push_routes(
    worker: usize,
    v: VertexId,
    subgraphs: &[Subgraph],
    replicas: &ReplicaTable,
    out: &mut Vec<Route>,
) {
    let master = replicas.master_of(v);
    let local_in = |part: PartitionId| -> u32 {
        let local = subgraphs[part.index()]
            .local_index_of(v)
            .expect("replica table lists this holder");
        u32::try_from(local).expect("local index fits u32")
    };
    if master.index() != worker {
        out.push(Route {
            worker: master.raw(),
            local: local_in(master),
        });
    }
    for &holder in replicas.replicas_of(v) {
        if holder.index() == worker || holder == master {
            continue;
        }
        out.push(Route {
            worker: holder.raw(),
            local: local_in(holder),
        });
    }
}

/// The distribution-wide routing table: per-worker route slices plus the
/// master-location array used by final value extraction. See the module
/// docs for the layout and the incremental-maintenance contract.
#[derive(Debug, Clone)]
pub(crate) struct RoutingTable {
    workers: Vec<WorkerRoutes>,
    /// `(worker, local)` of every vertex's master replica, indexed by
    /// vertex id; [`ABSENT`] for vertices held by no subgraph.
    master_location: Vec<Route>,
    /// Mutation epoch this table describes (kept in lockstep with
    /// `DistributedGraph::epoch`).
    epoch: usize,
}

/// Structural equality ignores the epoch: an incrementally maintained
/// table must equal the from-scratch rebuild of the same distribution even
/// though the two disagree on how many epochs produced it.
impl PartialEq for RoutingTable {
    fn eq(&self, other: &Self) -> bool {
        self.workers == other.workers && self.master_location == other.master_location
    }
}

impl RoutingTable {
    /// Builds the table from scratch for the given distribution state.
    pub(crate) fn build(
        subgraphs: &[Subgraph],
        replicas: &ReplicaTable,
        num_vertices: usize,
        epoch: usize,
    ) -> Self {
        let workers = subgraphs
            .iter()
            .enumerate()
            .map(|(w, sg)| WorkerRoutes::build(w, sg, subgraphs, replicas))
            .collect();
        let mut master_location = vec![ABSENT; num_vertices];
        for (d, sg) in subgraphs.iter().enumerate() {
            for (local, &v) in sg.vertices().iter().enumerate() {
                if replicas.master_of(v).index() == d {
                    master_location[v.index()] = Route {
                        worker: u32::try_from(d).expect("worker fits u32"),
                        local: u32::try_from(local).expect("local index fits u32"),
                    };
                }
            }
        }
        RoutingTable {
            workers,
            master_location,
            epoch,
        }
    }

    /// The epoch this table was built (or last updated) for.
    pub(crate) fn epoch(&self) -> usize {
        self.epoch
    }

    /// Re-stamps the epoch without touching the routes. Used when a
    /// freshly assembled distribution is adopted as the continuation of an
    /// earlier lineage (checkpoint recovery): the routes are already the
    /// from-scratch rebuild, only the version label must follow the graph.
    pub(crate) fn set_epoch(&mut self, epoch: usize) {
        self.epoch = epoch;
    }

    /// The per-worker route tables, indexed by worker.
    pub(crate) fn worker_tables(&self) -> &[WorkerRoutes] {
        &self.workers
    }

    /// The `(worker, local)` location of vertex `raw`'s master replica, or
    /// `None` when the vertex is absent from every subgraph.
    #[inline]
    pub(crate) fn master_location(&self, raw: usize) -> Option<(usize, usize)> {
        let route = self.master_location[raw];
        if route == ABSENT {
            None
        } else {
            Some((route.worker as usize, route.local as usize))
        }
    }

    /// Incrementally brings the table in line with a mutation epoch:
    /// `rebuilt` flags the workers whose subgraphs were re-assembled (their
    /// route tables rebuild wholesale and their new local indices are
    /// patched into every untouched holder), `affected` lists (ascending)
    /// the vertices whose replica set or master may have changed (their
    /// route lists are recomputed in every untouched holder and spliced
    /// in). Everything else is untouched — the incremental counterpart of
    /// [`RoutingTable::build`].
    pub(crate) fn apply_update(
        &mut self,
        subgraphs: &[Subgraph],
        replicas: &ReplicaTable,
        rebuilt: &[bool],
        affected: &[usize],
        num_vertices: usize,
        epoch: usize,
    ) {
        self.epoch = epoch;
        self.master_location.resize(num_vertices, ABSENT);

        // Rebuilt workers get fresh route tables.
        for (w, sg) in subgraphs.iter().enumerate() {
            if rebuilt[w] {
                self.workers[w] = WorkerRoutes::build(w, sg, subgraphs, replicas);
            }
        }

        // Their vertices moved to new local indices: refresh the master
        // locations they host and re-point the routes of every untouched
        // holder. Affected vertices are skipped — their route lists are
        // recomputed from scratch below.
        for (d, sg) in subgraphs.iter().enumerate() {
            if !rebuilt[d] {
                continue;
            }
            let dest = u32::try_from(d).expect("worker fits u32");
            for (local, &v) in sg.vertices().iter().enumerate() {
                let vi = v.index();
                let local = u32::try_from(local).expect("local index fits u32");
                if replicas.master_of(v).index() == d {
                    self.master_location[vi] = Route {
                        worker: dest,
                        local,
                    };
                }
                if affected.binary_search(&vi).is_ok() {
                    continue;
                }
                for &holder in replicas.replicas_of(v) {
                    let h = holder.index();
                    if h == d || rebuilt[h] {
                        continue;
                    }
                    let hl = subgraphs[h]
                        .local_index_of(v)
                        .expect("replica table lists this holder");
                    self.workers[h].patch_dest(hl, dest, local);
                }
            }
        }

        // Affected vertices: recompute master locations and the route
        // lists inside untouched holders (rebuilt holders already have
        // them from the wholesale rebuild).
        let mut changes: Vec<Vec<(usize, Vec<Route>)>> = vec![Vec::new(); subgraphs.len()];
        for &vi in affected {
            let v = VertexId::from(vi);
            let holders = replicas.replicas_of(v);
            self.master_location[vi] = if holders.is_empty() {
                ABSENT
            } else {
                let master = replicas.master_of(v);
                let local = subgraphs[master.index()]
                    .local_index_of(v)
                    .expect("master holds its vertex");
                Route {
                    worker: master.raw(),
                    local: u32::try_from(local).expect("local index fits u32"),
                }
            };
            for &holder in holders {
                let h = holder.index();
                if rebuilt[h] {
                    continue;
                }
                let hl = subgraphs[h]
                    .local_index_of(v)
                    .expect("replica table lists this holder");
                let mut routes = Vec::new();
                push_routes(h, v, subgraphs, replicas, &mut routes);
                changes[h].push((hl, routes));
            }
        }
        for (w, mut changed) in changes.into_iter().enumerate() {
            if changed.is_empty() {
                continue;
            }
            changed.sort_unstable_by_key(|&(local, _)| local);
            self.workers[w].splice(&changed);
        }
    }
}
