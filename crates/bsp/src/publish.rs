//! Publication seams: how computed epoch values leave the engine.
//!
//! A BSP run ends with a [`BspOutcome`](crate::BspOutcome) whose value
//! vector dies with the caller — nothing downstream can answer "what is
//! vertex v's component *right now*" while the next epoch computes. These
//! two traits are the engine-side half of the epoch-versioned query plane:
//!
//! * [`ValueSink`] receives a finished run's master-value array (the
//!   engine calls it from `run_opts` when
//!   [`RunOptions::publish_to`](crate::RunOptions::publish_to) is set), so
//!   a snapshot store can *stage* the values of the epoch being built;
//! * [`EpochCommitter`] is called by the dynamic pipeline after an epoch's
//!   mutations are applied and its programs have run, to *flip* everything
//!   staged for that epoch into readers' view atomically.
//!
//! The split is what gives snapshot isolation at epoch granularity: any
//! number of series (components, distances, ranks) are staged one by one,
//! and a single commit makes them all visible together, tagged with the
//! graph's epoch. The traits live here — in `ebv-bsp`, next to the engine —
//! so the dependency direction stays clean: the engine and pipeline know
//! only these seams, and the concrete store (`ebv-serve`) plugs in on top.

use crate::stats::ExecutionStats;

/// A destination for a finished run's master values.
///
/// `values[i]` is vertex `i`'s converged value, exactly as returned in
/// [`BspOutcome::values`](crate::BspOutcome) (absent vertices hold the
/// program's initial value). The sink must not assume it is called from any
/// particular thread, but calls for a given store are not concurrent: the
/// engine publishes synchronously at the end of the run that computed the
/// values.
pub trait ValueSink<V>: Sync {
    /// Receives the run's values and the stats describing how they were
    /// computed (supersteps, messages, convergence).
    fn publish(&self, values: &[V], stats: &ExecutionStats);
}

/// An epoch-boundary commit hook: makes everything staged since the last
/// commit visible to readers atomically, tagged with the graph's epoch.
///
/// The dynamic pipeline calls this once per *applied* epoch, after the
/// caller's `on_epoch` hook has run every program it wants served (staging
/// values through [`ValueSink`]s). Implementations must be safe to call
/// while concurrent readers hold the previous epoch's snapshot — that is
/// the entire point. The post-apply
/// [`DistributedGraph`](crate::subgraph::DistributedGraph) is passed so a
/// store can tag the snapshot (epoch, vertex count) and optionally derive
/// structural reads (adjacency) from the same state the values were
/// computed on.
pub trait EpochCommitter {
    /// Flips the staged values into the readable snapshot for
    /// `distributed.epoch()`.
    fn commit_epoch(&self, distributed: &crate::subgraph::DistributedGraph);
}

/// The durability seam of the dynamic pipeline: a write-ahead log plus
/// periodic checkpoints, so a crash can be recovered to the exact epoch
/// lineage a never-crashed run would have produced.
///
/// The pipeline drives it with a strict ordering per applied epoch:
///
/// 1. [`log_batch`](Self::log_batch) **before** `apply_mutations` — the
///    WAL frame for epoch `e` is on disk before any in-memory state
///    reflects it (log-before-apply). A crash between the two leaves a
///    logged-but-unapplied frame, which recovery replays; that is
///    indistinguishable from having applied it and then crashed.
/// 2. [`epoch_durable`](Self::epoch_durable) **after** the epoch's
///    programs ran and the [`EpochCommitter`] flipped the snapshot — the
///    implementation decides whether this epoch is a checkpoint boundary
///    (fold the WAL suffix into a full snapshot of the distribution) or a
///    no-op.
///
/// Like the other publication seams, the trait lives here so the
/// dependency direction stays clean: the pipeline (`ebv-dynamic`) knows
/// only this interface and the durable store (`ebv-state`) plugs in on
/// top. Errors are surfaced as `std::io::Error` — durability failures are
/// environment failures, and the pipeline aborts the epoch rather than
/// continue un-logged.
pub trait DurabilityHook {
    /// Persists the mutation batch that is *about to become* epoch
    /// `epoch`, called strictly before the batch is applied.
    /// `events_seen` is the cumulative count of raw stream events
    /// (inserts plus deletes, before in-batch cancellation) consumed
    /// through the end of this batch — recovery uses it to fast-forward a
    /// deterministic event source past the replayed prefix.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the pipeline treats it as fatal for the run.
    fn log_batch(
        &self,
        epoch: u64,
        events_seen: u64,
        batch: &crate::subgraph::MutationBatch,
    ) -> std::io::Result<()>;

    /// Marks epoch `distributed.epoch()` fully applied, computed and
    /// committed. Implementations checkpoint here every N epochs: the
    /// passed graph and partitioner are exactly the state a restart must
    /// reproduce, and `events_seen` is the stream position to store with
    /// it.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the pipeline treats it as fatal for the run.
    fn epoch_durable(
        &self,
        distributed: &crate::subgraph::DistributedGraph,
        partitioner: &ebv_partition::DynamicPartitioner,
        events_seen: u64,
    ) -> std::io::Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct CollectingSink {
        seen: Mutex<Vec<Vec<u64>>>,
    }

    impl ValueSink<u64> for CollectingSink {
        fn publish(&self, values: &[u64], _stats: &ExecutionStats) {
            self.seen.lock().unwrap().push(values.to_vec());
        }
    }

    #[test]
    fn sinks_are_object_safe_and_receive_values() {
        let sink = CollectingSink {
            seen: Mutex::new(Vec::new()),
        };
        let stats = ExecutionStats::default();
        let dyn_sink: &dyn ValueSink<u64> = &sink;
        dyn_sink.publish(&[3, 1, 4], &stats);
        assert_eq!(*sink.seen.lock().unwrap(), vec![vec![3, 1, 4]]);
    }
}
