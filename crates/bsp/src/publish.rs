//! Publication seams: how computed epoch values leave the engine.
//!
//! A BSP run ends with a [`BspOutcome`](crate::BspOutcome) whose value
//! vector dies with the caller — nothing downstream can answer "what is
//! vertex v's component *right now*" while the next epoch computes. These
//! two traits are the engine-side half of the epoch-versioned query plane:
//!
//! * [`ValueSink`] receives a finished run's master-value array (the
//!   engine calls it from `run_opts` when
//!   [`RunOptions::publish_to`](crate::RunOptions::publish_to) is set), so
//!   a snapshot store can *stage* the values of the epoch being built;
//! * [`EpochCommitter`] is called by the dynamic pipeline after an epoch's
//!   mutations are applied and its programs have run, to *flip* everything
//!   staged for that epoch into readers' view atomically.
//!
//! The split is what gives snapshot isolation at epoch granularity: any
//! number of series (components, distances, ranks) are staged one by one,
//! and a single commit makes them all visible together, tagged with the
//! graph's epoch. The traits live here — in `ebv-bsp`, next to the engine —
//! so the dependency direction stays clean: the engine and pipeline know
//! only these seams, and the concrete store (`ebv-serve`) plugs in on top.

use crate::stats::ExecutionStats;

/// A destination for a finished run's master values.
///
/// `values[i]` is vertex `i`'s converged value, exactly as returned in
/// [`BspOutcome::values`](crate::BspOutcome) (absent vertices hold the
/// program's initial value). The sink must not assume it is called from any
/// particular thread, but calls for a given store are not concurrent: the
/// engine publishes synchronously at the end of the run that computed the
/// values.
pub trait ValueSink<V>: Sync {
    /// Receives the run's values and the stats describing how they were
    /// computed (supersteps, messages, convergence).
    fn publish(&self, values: &[V], stats: &ExecutionStats);
}

/// An epoch-boundary commit hook: makes everything staged since the last
/// commit visible to readers atomically, tagged with the graph's epoch.
///
/// The dynamic pipeline calls this once per *applied* epoch, after the
/// caller's `on_epoch` hook has run every program it wants served (staging
/// values through [`ValueSink`]s). Implementations must be safe to call
/// while concurrent readers hold the previous epoch's snapshot — that is
/// the entire point. The post-apply
/// [`DistributedGraph`](crate::subgraph::DistributedGraph) is passed so a
/// store can tag the snapshot (epoch, vertex count) and optionally derive
/// structural reads (adjacency) from the same state the values were
/// computed on.
pub trait EpochCommitter {
    /// Flips the staged values into the readable snapshot for
    /// `distributed.epoch()`.
    fn commit_epoch(&self, distributed: &crate::subgraph::DistributedGraph);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct CollectingSink {
        seen: Mutex<Vec<Vec<u64>>>,
    }

    impl ValueSink<u64> for CollectingSink {
        fn publish(&self, values: &[u64], _stats: &ExecutionStats) {
            self.seen.lock().unwrap().push(values.to_vec());
        }
    }

    #[test]
    fn sinks_are_object_safe_and_receive_values() {
        let sink = CollectingSink {
            seen: Mutex::new(Vec::new()),
        };
        let stats = ExecutionStats::default();
        let dyn_sink: &dyn ValueSink<u64> = &sink;
        dyn_sink.publish(&[3, 1, 4], &stats);
        assert_eq!(*sink.seen.lock().unwrap(), vec![vec![3, 1, 4]]);
    }
}
