//! Execution statistics and the deterministic cost model.
//!
//! The paper's Tables II, IV and V and Figures 2–4 are all derived from three
//! per-worker, per-superstep quantities: computational work, messages sent
//! and messages received. [`ExecutionStats`] records them exactly (they are
//! platform-independent counters, the same metric the paper uses in Section
//! V-C), and [`CostModel`] converts them into the modeled execution-time
//! breakdown (comp, comm, ΔC, execution time) reported by Table II and
//! plotted in Figures 2–4.

use std::fmt;

use serde::{Deserialize, Serialize};

use ebv_partition::max_mean_ratio;

/// Counters for one worker during one superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerSuperstepStats {
    /// Work units (edge traversals) performed in the computation stage.
    pub work: u64,
    /// Replica messages sent during the communication stage.
    pub messages_sent: usize,
    /// Replica messages received during the communication stage.
    pub messages_received: usize,
    /// Local vertex updates performed.
    pub updates: usize,
}

/// Counters for all workers during one superstep.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperstepStats {
    /// Per-worker counters, indexed by worker (partition).
    pub per_worker: Vec<WorkerSuperstepStats>,
}

impl SuperstepStats {
    /// Total messages sent by all workers in this superstep.
    pub fn messages(&self) -> usize {
        self.per_worker.iter().map(|w| w.messages_sent).sum()
    }

    /// Total updates performed by all workers in this superstep.
    pub fn updates(&self) -> usize {
        self.per_worker.iter().map(|w| w.updates).sum()
    }
}

/// Counters for a whole program execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Number of workers.
    pub num_workers: usize,
    /// Mutation epoch of the distributed graph the program ran on: 0 for a
    /// fresh build, incremented per absorbed non-empty mutation batch (see
    /// `DistributedGraph::apply_mutations`).
    pub epoch: usize,
    /// Workers re-assembled by the mutation epoch that produced the
    /// distribution this program ran on (0 for fresh builds) — the
    /// incremental-assembly locality counter of
    /// `DistributedGraph::last_mutation`.
    pub workers_touched: usize,
    /// Local edges re-indexed by that mutation epoch (0 for fresh builds).
    pub edges_rebuilt: usize,
    /// Per-superstep counters.
    pub supersteps: Vec<SuperstepStats>,
}

impl ExecutionStats {
    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total number of replica messages sent over the whole execution — the
    /// platform-independent communication metric of Table IV.
    pub fn total_messages(&self) -> usize {
        self.supersteps.iter().map(|s| s.messages()).sum()
    }

    /// Total work units over the whole execution.
    pub fn total_work(&self) -> u64 {
        self.supersteps
            .iter()
            .flat_map(|s| s.per_worker.iter())
            .map(|w| w.work)
            .sum()
    }

    /// Messages sent by each worker, summed over supersteps.
    pub fn messages_sent_per_worker(&self) -> Vec<usize> {
        let mut totals = vec![0usize; self.num_workers];
        for superstep in &self.supersteps {
            for (i, w) in superstep.per_worker.iter().enumerate() {
                totals[i] += w.messages_sent;
            }
        }
        totals
    }

    /// The max/mean ratio of per-worker sent messages — the communication
    /// imbalance metric of Table V.
    pub fn message_max_mean_ratio(&self) -> f64 {
        max_mean_ratio(&self.messages_sent_per_worker())
    }

    /// Work units performed by each worker, summed over supersteps.
    pub fn work_per_worker(&self) -> Vec<usize> {
        let mut totals = vec![0usize; self.num_workers];
        for superstep in &self.supersteps {
            for (i, w) in superstep.per_worker.iter().enumerate() {
                totals[i] += w.work as usize;
            }
        }
        totals
    }

    /// The max/mean ratio of per-worker work units — the deterministic
    /// counted counterpart of the wall-clock `ebv_bsp_straggler_ratio`
    /// gauge: work skew predicts compute-time skew under the cost model,
    /// so a divergence between the two points at platform effects (cache,
    /// scheduling) rather than partitioning.
    pub fn work_max_mean_ratio(&self) -> f64 {
        max_mean_ratio(&self.work_per_worker())
    }
}

impl fmt::Display for ExecutionStats {
    /// One-line summary: supersteps, messages, work units, workers, epoch
    /// and (when non-zero) the incremental-assembly counters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} supersteps, {} messages, {} work units over {} workers (epoch {}",
            self.num_supersteps(),
            self.total_messages(),
            self.total_work(),
            self.num_workers,
            self.epoch,
        )?;
        if self.workers_touched > 0 || self.edges_rebuilt > 0 {
            write!(
                f,
                ", {} workers touched, {} edges rebuilt",
                self.workers_touched, self.edges_rebuilt
            )?;
        }
        write!(f, ")")
    }
}

/// Converts counted work and messages into modeled seconds.
///
/// The absolute constants are calibrated to commodity-cluster magnitudes
/// (tens of nanoseconds per edge traversal, hundreds of nanoseconds per
/// message, a millisecond of barrier overhead); the paper's conclusions rest
/// on *relative* comparisons between partitioners, which are preserved under
/// any positive choice of constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds of computation per work unit (edge traversal).
    pub seconds_per_work_unit: f64,
    /// Seconds of communication per replica message.
    pub seconds_per_message: f64,
    /// Fixed per-superstep synchronization overhead in seconds.
    pub superstep_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seconds_per_work_unit: 5e-8,
            seconds_per_message: 6e-7,
            superstep_overhead: 1e-3,
        }
    }
}

/// The comp/comm/sync spans of one worker in one superstep — one bar of the
/// Figure 4 timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelineSpan {
    /// Modeled computation seconds.
    pub comp: f64,
    /// Modeled communication seconds.
    pub comm: f64,
    /// Modeled synchronization (waiting) seconds.
    pub sync: f64,
}

/// The Table II execution-time breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Mean over workers of the total computation time (the paper's `comp`).
    pub comp: f64,
    /// Mean over workers of the total communication time (the paper's `comm`).
    pub comm: f64,
    /// Accumulated synchronization gap `ΔC = Σ_k (max_i − min_i)`.
    pub delta_c: f64,
    /// Modeled execution time `Σ_k max_i(comp + comm)` plus superstep
    /// overhead.
    pub execution_time: f64,
    /// Per-worker, per-superstep spans (the Figure 4 timeline).
    pub timelines: Vec<Vec<TimelineSpan>>,
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comp {:.3}s, comm {:.3}s, deltaC {:.3}s, execution {:.3}s",
            self.comp, self.comm, self.delta_c, self.execution_time
        )
    }
}

impl CostModel {
    /// Computes the Table II breakdown (and Figure 4 timelines) from the
    /// execution counters.
    pub fn breakdown(&self, stats: &ExecutionStats) -> Breakdown {
        let p = stats.num_workers.max(1);
        let mut comp_totals = vec![0.0f64; p];
        let mut comm_totals = vec![0.0f64; p];
        let mut delta_c = 0.0f64;
        let mut execution_time = 0.0f64;
        let mut timelines: Vec<Vec<TimelineSpan>> = vec![Vec::new(); p];

        for superstep in &stats.supersteps {
            let spans: Vec<(f64, f64)> = superstep
                .per_worker
                .iter()
                .map(|w| {
                    let comp = w.work as f64 * self.seconds_per_work_unit;
                    let comm =
                        (w.messages_sent + w.messages_received) as f64 * self.seconds_per_message;
                    (comp, comm)
                })
                .collect();
            let busy: Vec<f64> = spans.iter().map(|(c, m)| c + m).collect();
            let max_busy = busy.iter().copied().fold(0.0f64, f64::max);
            let min_busy = busy.iter().copied().fold(f64::INFINITY, f64::min);
            let min_busy = if min_busy.is_finite() { min_busy } else { 0.0 };
            delta_c += max_busy - min_busy;
            execution_time += max_busy + self.superstep_overhead;
            for (i, (comp, comm)) in spans.iter().enumerate() {
                comp_totals[i] += comp;
                comm_totals[i] += comm;
                timelines[i].push(TimelineSpan {
                    comp: *comp,
                    comm: *comm,
                    sync: max_busy - busy[i],
                });
            }
        }

        Breakdown {
            comp: comp_totals.iter().sum::<f64>() / p as f64,
            comm: comm_totals.iter().sum::<f64>() / p as f64,
            delta_c,
            execution_time,
            timelines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_two_workers() -> ExecutionStats {
        ExecutionStats {
            num_workers: 2,
            epoch: 0,
            workers_touched: 0,
            edges_rebuilt: 0,
            supersteps: vec![
                SuperstepStats {
                    per_worker: vec![
                        WorkerSuperstepStats {
                            work: 100,
                            messages_sent: 10,
                            messages_received: 5,
                            updates: 3,
                        },
                        WorkerSuperstepStats {
                            work: 200,
                            messages_sent: 20,
                            messages_received: 25,
                            updates: 4,
                        },
                    ],
                },
                SuperstepStats {
                    per_worker: vec![
                        WorkerSuperstepStats {
                            work: 50,
                            messages_sent: 0,
                            messages_received: 20,
                            updates: 1,
                        },
                        WorkerSuperstepStats {
                            work: 60,
                            messages_sent: 0,
                            messages_received: 10,
                            updates: 0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn totals_are_summed_correctly() {
        let s = stats_two_workers();
        assert_eq!(s.num_supersteps(), 2);
        assert_eq!(s.total_messages(), 30);
        assert_eq!(s.total_work(), 410);
        assert_eq!(s.messages_sent_per_worker(), vec![10, 20]);
        assert!((s.message_max_mean_ratio() - 20.0 / 15.0).abs() < 1e-12);
        assert_eq!(s.work_per_worker(), vec![150, 260]);
        assert!((s.work_max_mean_ratio() - 260.0 / 205.0).abs() < 1e-12);
        assert_eq!(s.supersteps[0].messages(), 30);
        assert_eq!(s.supersteps[0].updates(), 7);
    }

    #[test]
    fn execution_stats_display_is_one_line() {
        let mut s = stats_two_workers();
        assert_eq!(
            s.to_string(),
            "2 supersteps, 30 messages, 410 work units over 2 workers (epoch 0)"
        );
        s.epoch = 3;
        s.workers_touched = 1;
        s.edges_rebuilt = 42;
        let line = s.to_string();
        assert!(line.contains("epoch 3"));
        assert!(line.contains("1 workers touched, 42 edges rebuilt"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn breakdown_matches_hand_computation() {
        let s = stats_two_workers();
        let model = CostModel {
            seconds_per_work_unit: 1.0,
            seconds_per_message: 10.0,
            superstep_overhead: 0.0,
        };
        let b = model.breakdown(&s);
        // Superstep 0: worker0 busy = 100 + 150 = 250, worker1 = 200 + 450 = 650.
        // Superstep 1: worker0 busy = 50 + 200 = 250, worker1 = 60 + 100 = 160.
        assert!((b.execution_time - (650.0 + 250.0)).abs() < 1e-9);
        assert!((b.delta_c - ((650.0 - 250.0) + (250.0 - 160.0))).abs() < 1e-9);
        assert!((b.comp - (150.0 + 260.0) / 2.0).abs() < 1e-9);
        assert!((b.comm - ((150.0 + 200.0) + (450.0 + 100.0)) / 2.0).abs() < 1e-9);
        // Timeline sync spans: the slowest worker waits 0.
        assert!((b.timelines[1][0].sync - 0.0).abs() < 1e-12);
        assert!((b.timelines[0][0].sync - 400.0).abs() < 1e-9);
        assert!(b.to_string().contains("execution"));
    }

    #[test]
    fn default_cost_model_is_positive() {
        let m = CostModel::default();
        assert!(m.seconds_per_work_unit > 0.0);
        assert!(m.seconds_per_message > 0.0);
        assert!(m.superstep_overhead > 0.0);
    }

    #[test]
    fn empty_stats_are_well_behaved() {
        let s = ExecutionStats::default();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_work(), 0);
        assert!((s.message_max_mean_ratio() - 1.0).abs() < 1e-12);
        let b = CostModel::default().breakdown(&s);
        assert_eq!(b.execution_time, 0.0);
        assert_eq!(b.delta_c, 0.0);
    }

    /// Zero-worker / zero-work guard: the skew ratios the engine exports
    /// to /metrics must stay finite (neutral 1.0) when a run had no
    /// workers or its supersteps performed no work at all — never
    /// `0/0 = NaN` or `x/0 = inf`.
    #[test]
    fn skew_ratios_are_finite_for_zero_worker_and_zero_work_runs() {
        // No workers at all (the degenerate stats shape).
        let no_workers = ExecutionStats {
            num_workers: 0,
            ..ExecutionStats::default()
        };
        assert!(no_workers.work_max_mean_ratio().is_finite());
        assert_eq!(no_workers.work_max_mean_ratio(), 1.0);
        assert_eq!(no_workers.message_max_mean_ratio(), 1.0);

        // Workers present, but every superstep counted zero work and zero
        // messages (e.g. a fully quiesced warm epoch).
        let zero_work = ExecutionStats {
            num_workers: 3,
            epoch: 5,
            workers_touched: 0,
            edges_rebuilt: 0,
            supersteps: vec![SuperstepStats {
                per_worker: vec![WorkerSuperstepStats::default(); 3],
            }],
        };
        assert_eq!(zero_work.work_per_worker(), vec![0, 0, 0]);
        assert!(zero_work.work_max_mean_ratio().is_finite());
        assert_eq!(zero_work.work_max_mean_ratio(), 1.0);
        assert!(zero_work.message_max_mean_ratio().is_finite());
        assert_eq!(zero_work.message_max_mean_ratio(), 1.0);
    }
}
