//! Durable state plane: write-ahead mutation log, epoch checkpoints and
//! crash-at-any-point recovery.
//!
//! The dynamic engine mutates a [`ebv_bsp::DistributedGraph`] one epoch at
//! a time. This crate makes that lineage survive process death:
//!
//! * [`wal`] — length-delimited, CRC-guarded frames of
//!   [`ebv_bsp::MutationBatch`]es, logged **before** each batch is
//!   applied. A torn tail (the signature of a crash) is discarded
//!   fail-safe; intact-but-inconsistent frames are hard errors.
//! * [`checkpoint`] — periodic full snapshots (distribution, partitioner,
//!   warm algorithm series, stream position) written atomically with an
//!   epoch-lineage manifest.
//! * [`store`] — [`DurableState`] glues both together: recovery loads the
//!   newest valid checkpoint, replays the WAL suffix and tells the caller
//!   how far the event stream must fast-forward; live operation plugs into
//!   the engine through [`ebv_bsp::DurabilityHook`].
//! * [`failpoint`] — byte-budget fault injection, so tests can crash the
//!   writer after *any* byte or rename and prove recovery is exact.
//!
//! Durability covers process crashes (every write is flushed), not power
//! loss (writes are not `fsync`ed); see the [`store`] docs.

#![deny(missing_docs)]

pub mod checkpoint;
mod crc;
pub mod error;
pub mod failpoint;
pub mod store;
pub mod wal;

pub use checkpoint::{Checkpoint, SeriesValues, CHECKPOINT_MAGIC};
pub use crc::crc32;
pub use error::{Result, StateError};
pub use failpoint::Failpoint;
pub use store::{DurableState, RecoveredState, MANIFEST_FILE};
pub use wal::{read_segment, WalFrame, WalWriter, WAL_MAGIC};
