//! Typed failures of the durable state plane.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Every way the durable state plane can fail.
///
/// The torn-tail case is deliberately *not* here: a truncated or
/// CRC-failing frame at the end of a WAL segment is the expected shape of
/// a crash and is silently discarded by recovery (the valid prefix wins).
/// Errors are reserved for conditions that must stop the process —
/// environment failures and evidence of corruption that discarding cannot
/// explain.
#[derive(Debug)]
pub enum StateError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A file is structurally invalid in a way a torn tail cannot
    /// produce: wrong magic, or a CRC-verified frame whose content does
    /// not decode.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// Byte offset of the first invalid content.
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// A CRC-valid WAL frame carries an epoch that does not continue the
    /// lineage (equal to or below its predecessor, or skipping ahead).
    /// Applying it silently would fork history, so recovery refuses.
    EpochRegression {
        /// The offending segment.
        file: PathBuf,
        /// The epoch the lineage required next.
        expected: u64,
        /// The epoch the frame carried.
        found: u64,
    },
    /// The fault-injection harness exhausted its byte budget: the write
    /// (or rename) this error aborted is the injected crash point. Only
    /// produced by stores armed with a crashing
    /// [`Failpoint`](crate::Failpoint).
    InjectedCrash,
    /// The store was driven outside its contract (e.g. a checkpoint for
    /// an epoch older than one already on disk).
    InvalidState {
        /// What the caller did wrong.
        message: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io(err) => write!(f, "durable state I/O failed: {err}"),
            StateError::Corrupt {
                file,
                offset,
                message,
            } => write!(
                f,
                "corrupt durable state in {} at byte {offset}: {message}",
                file.display()
            ),
            StateError::EpochRegression {
                file,
                expected,
                found,
            } => write!(
                f,
                "epoch regression in {}: lineage requires epoch {expected}, frame carries \
                 {found}",
                file.display()
            ),
            StateError::InjectedCrash => write!(f, "injected crash (failpoint budget exhausted)"),
            StateError::InvalidState { message } => {
                write!(f, "invalid durable-state use: {message}")
            }
        }
    }
}

impl std::error::Error for StateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StateError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for StateError {
    fn from(err: io::Error) -> Self {
        StateError::Io(err)
    }
}

impl From<StateError> for io::Error {
    /// The [`DurabilityHook`](ebv_bsp::DurabilityHook) seam speaks
    /// `io::Error`; wrap everything that is not already one.
    fn from(err: StateError) -> Self {
        match err {
            StateError::Io(err) => err,
            other => io::Error::other(other),
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StateError>();
        let err = StateError::EpochRegression {
            file: PathBuf::from("wal-3.log"),
            expected: 4,
            found: 3,
        };
        let text = err.to_string();
        assert!(text.contains("wal-3.log") && text.contains('4') && text.contains('3'));
    }

    #[test]
    fn io_round_trip_preserves_the_injected_crash_marker() {
        let io_err: io::Error = StateError::InjectedCrash.into();
        assert!(io_err.to_string().contains("injected crash"));
    }
}
