//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every WAL frame and checkpoint carries a trailing CRC so recovery can
//! tell a torn tail from intact data. The vendored dependency set has no
//! checksum crate, so the classic reflected table implementation lives
//! here: 256-entry table built at first use, one lookup per byte. The
//! polynomial (0xEDB88320 reflected) matches zlib/`crc32fast`, so frames
//! remain checkable by standard tooling.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed once.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn a_single_flipped_bit_changes_the_checksum() {
        let mut frame = b"epoch 17 payload".to_vec();
        let clean = crc32(&frame);
        frame[3] ^= 0x01;
        assert_ne!(clean, crc32(&frame));
    }
}
