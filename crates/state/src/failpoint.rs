//! Byte-budget fault injection for the durable writers.
//!
//! Every byte the durable state plane persists — WAL frames, checkpoint
//! bodies — and every atomic rename flows through a [`Failpoint`]. A
//! disarmed failpoint only counts; an armed one admits exactly `budget`
//! units and then fails the write **after truncating it at the budget
//! boundary**, which is byte-for-byte the on-disk state a process crash at
//! that point would leave. The crash-at-any-point property test first runs
//! disarmed to learn the total unit count, then replays with every budget
//! in `[0, total)`.
//!
//! Renames charge one unit, so "crashed before the atomic rename" and
//! "crashed after" are distinct injectable states.

use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::error::{Result, StateError};

#[derive(Debug)]
struct FailpointState {
    /// Units admitted so far (bytes written + renames performed).
    used: u64,
    /// Remaining budget; `None` = disarmed (never crashes).
    remaining: Option<u64>,
}

/// A shared crash budget; see the [module documentation](self).
///
/// Cloning shares the budget — hand the same failpoint to every writer
/// whose combined output should crash at a single global byte offset.
#[derive(Debug, Clone)]
pub struct Failpoint {
    state: Arc<Mutex<FailpointState>>,
}

impl Failpoint {
    /// A failpoint that never crashes but still counts units.
    pub fn disarmed() -> Self {
        Failpoint {
            state: Arc::new(Mutex::new(FailpointState {
                used: 0,
                remaining: None,
            })),
        }
    }

    /// A failpoint that admits exactly `budget` units, then crashes every
    /// subsequent durable operation.
    pub fn crash_after(budget: u64) -> Self {
        Failpoint {
            state: Arc::new(Mutex::new(FailpointState {
                used: 0,
                remaining: Some(budget),
            })),
        }
    }

    /// Units admitted so far (bytes + renames). On a disarmed reference
    /// run this is the exclusive upper bound of injectable crash points.
    pub fn units_used(&self) -> u64 {
        self.state.lock().expect("failpoint lock").used
    }

    /// Whether the budget is exhausted (always `false` when disarmed).
    pub fn crashed(&self) -> bool {
        matches!(
            self.state.lock().expect("failpoint lock").remaining,
            Some(0)
        )
    }

    /// Admits up to `want` units, returning how many were granted.
    fn admit(&self, want: u64) -> u64 {
        let mut state = self.state.lock().expect("failpoint lock");
        let allowed = match state.remaining.as_mut() {
            None => want,
            Some(remaining) => {
                let allowed = want.min(*remaining);
                *remaining -= allowed;
                allowed
            }
        };
        state.used += allowed;
        allowed
    }

    /// Writes `bytes` through the budget: the admitted prefix reaches
    /// `writer` (and is flushed), and if anything was cut off the call
    /// fails with [`StateError::InjectedCrash`] — the on-disk state is
    /// exactly what a crash mid-write would leave.
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] from the writer, or
    /// [`StateError::InjectedCrash`] at budget exhaustion.
    pub fn write_all<W: Write>(&self, writer: &mut W, bytes: &[u8]) -> Result<()> {
        let allowed = self.admit(bytes.len() as u64) as usize;
        writer.write_all(&bytes[..allowed])?;
        writer.flush()?;
        if allowed < bytes.len() {
            return Err(StateError::InjectedCrash);
        }
        Ok(())
    }

    /// Performs an atomic rename, charging one unit. A crash lands
    /// *before* the rename (the destination never appears).
    ///
    /// # Errors
    ///
    /// [`StateError::InjectedCrash`] at budget exhaustion,
    /// [`StateError::Io`] from the filesystem.
    pub fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        if self.admit(1) == 0 {
            return Err(StateError::InjectedCrash);
        }
        fs::rename(from, to)?;
        Ok(())
    }
}

impl Default for Failpoint {
    fn default() -> Self {
        Failpoint::disarmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_counts_without_crashing() {
        let fp = Failpoint::disarmed();
        let mut out = Vec::new();
        fp.write_all(&mut out, b"hello").unwrap();
        fp.write_all(&mut out, b" world").unwrap();
        assert_eq!(out, b"hello world");
        assert_eq!(fp.units_used(), 11);
        assert!(!fp.crashed());
    }

    #[test]
    fn armed_truncates_at_the_budget_boundary() {
        let fp = Failpoint::crash_after(7);
        let mut out = Vec::new();
        fp.write_all(&mut out, b"hello").unwrap();
        let err = fp.write_all(&mut out, b" world").unwrap_err();
        assert!(matches!(err, StateError::InjectedCrash));
        assert_eq!(out, b"hello w", "prefix up to the budget reaches disk");
        assert!(fp.crashed());
        // Once crashed, everything fails, nothing further lands.
        let err = fp.write_all(&mut out, b"more").unwrap_err();
        assert!(matches!(err, StateError::InjectedCrash));
        assert_eq!(out, b"hello w");
    }

    #[test]
    fn rename_charges_one_unit() {
        let dir = std::env::temp_dir().join(format!(
            "ebv-state-fp-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let from = dir.join("a.tmp");
        let to = dir.join("a");
        std::fs::write(&from, b"x").unwrap();

        let fp = Failpoint::crash_after(0);
        assert!(matches!(
            fp.rename(&from, &to).unwrap_err(),
            StateError::InjectedCrash
        ));
        assert!(from.exists() && !to.exists(), "crash lands before rename");

        let fp = Failpoint::crash_after(1);
        fp.rename(&from, &to).unwrap();
        assert!(!from.exists() && to.exists());
        assert_eq!(fp.units_used(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
