//! Full-state epoch checkpoints.
//!
//! A checkpoint captures everything a restart needs to continue the
//! lineage at epoch `E` without replaying history from zero:
//!
//! * the **distribution** — each worker's edge list in local order, which
//!   is sufficient to rebuild the whole [`DistributedGraph`] bit-for-bit
//!   (replica sets, master election, isolated placement and the routing
//!   table are all deterministic functions of the per-worker lists);
//! * the **partitioner** — the surviving `(edge, partition)` pairs in
//!   insertion order plus the observed vertex universe, from which
//!   [`DynamicPartitioner::restore`] reproduces placement-identical
//!   state;
//! * the **warm series** — named algorithm value vectors (components,
//!   distances, …) so warm-started programs re-seed instead of re-running
//!   cold;
//! * the stream position (`events_seen`) so a deterministic event source
//!   can be fast-forwarded past everything the checkpoint already covers.
//!
//! The file is a magic, a varint-encoded body and a trailing CRC-32,
//! written to a temporary name and atomically renamed into place — a
//! checkpoint either exists completely or not at all.

use std::fs;
use std::path::Path;

use ebv_bsp::{DistributedGraph, DistributedGraphBuilder};
use ebv_graph::Edge;
use ebv_partition::{DynamicPartitioner, PartitionId};

use crate::crc::crc32;
use crate::error::{Result, StateError};
use crate::wal::{push_varint, Cursor};

/// Magic bytes opening every checkpoint file (version 1).
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"EBVCKPT\x01";

/// A named warm-algorithm value series carried by a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValues {
    /// Unsigned values (components, hop counts, …).
    U64(Vec<u64>),
    /// Floating values (distances, ranks); stored as raw bits, so the
    /// round trip is bit-exact including NaN payloads and infinities.
    F64(Vec<f64>),
}

impl SeriesValues {
    /// Number of values in the series.
    pub fn len(&self) -> usize {
        match self {
            SeriesValues::U64(v) => v.len(),
            SeriesValues::F64(v) => v.len(),
        }
    }

    /// Whether the series holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A decoded checkpoint; see the [module documentation](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The epoch this checkpoint captures.
    pub epoch: u64,
    /// Raw stream events consumed through this epoch.
    pub events_seen: u64,
    /// Vertex universe of the distribution (`DistributedGraph::num_vertices`).
    pub num_vertices: usize,
    /// Per-worker local edge lists, in worker order and local edge order.
    pub worker_edges: Vec<Vec<(Edge, PartitionId)>>,
    /// The partitioner's observed universe (`DynamicPartitioner::num_vertices`).
    pub universe: usize,
    /// The partitioner's surviving pairs in insertion order.
    pub surviving: Vec<(Edge, PartitionId)>,
    /// Named warm series, sorted by name.
    pub series: Vec<(String, SeriesValues)>,
}

impl Checkpoint {
    /// Captures the durable snapshot of a live distribution and
    /// partitioner.
    pub fn capture(
        distributed: &DistributedGraph,
        partitioner: &DynamicPartitioner,
        events_seen: u64,
        series: Vec<(String, SeriesValues)>,
    ) -> Self {
        let worker_edges = distributed
            .subgraphs()
            .iter()
            .map(|sg| {
                let part = sg.part();
                sg.edges().iter().map(|&e| (e, part)).collect()
            })
            .collect();
        Checkpoint {
            epoch: distributed.epoch() as u64,
            events_seen,
            num_vertices: distributed.num_vertices(),
            worker_edges,
            universe: partitioner.num_vertices(),
            surviving: partitioner.surviving().collect(),
            series,
        }
    }

    /// Rebuilds the distribution this checkpoint captured, epoch stamp
    /// included. The result satisfies
    /// [`DistributedGraph::same_structure`] against the original.
    ///
    /// # Errors
    ///
    /// [`StateError::InvalidState`] when the stored lists are mutually
    /// inconsistent (they came from a live graph, so this indicates file
    /// tampering that still passed CRC, or a version skew).
    pub fn rebuild_graph(&self) -> Result<DistributedGraph> {
        let invalid = |err: ebv_bsp::BspError| StateError::InvalidState {
            message: format!("checkpoint does not describe a buildable distribution: {err}"),
        };
        let mut builder = DistributedGraphBuilder::new(self.worker_edges.len())
            .map_err(invalid)?
            .with_num_vertices(self.num_vertices)
            .with_epoch(
                usize::try_from(self.epoch).map_err(|_| StateError::InvalidState {
                    message: format!("checkpoint epoch {} exceeds usize", self.epoch),
                })?,
            );
        for worker in &self.worker_edges {
            for &(edge, part) in worker {
                builder.add_edge(edge, part).map_err(invalid)?;
            }
        }
        builder.finish().map_err(invalid)
    }

    /// Restores `partitioner` (freshly constructed with the original's
    /// policy and [`ebv_partition::StreamConfig`]) to the captured state.
    ///
    /// # Errors
    ///
    /// [`StateError::InvalidState`] when the partitioner already holds
    /// state or the pairs are inconsistent with its configuration.
    pub fn restore_partitioner(&self, partitioner: &mut DynamicPartitioner) -> Result<()> {
        partitioner
            .restore(self.universe, self.surviving.iter().copied())
            .map_err(|err| StateError::InvalidState {
                message: format!("checkpoint does not restore the partitioner: {err}"),
            })
    }

    /// Encodes the checkpoint: magic ‖ body ‖ crc32(body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        push_varint(&mut body, self.epoch);
        push_varint(&mut body, self.events_seen);
        push_varint(&mut body, self.num_vertices as u64);
        push_varint(&mut body, self.worker_edges.len() as u64);
        for worker in &self.worker_edges {
            push_varint(&mut body, worker.len() as u64);
            for &(edge, part) in worker {
                push_varint(&mut body, edge.src.raw());
                push_varint(&mut body, edge.dst.raw());
                push_varint(&mut body, part.index() as u64);
            }
        }
        push_varint(&mut body, self.universe as u64);
        push_varint(&mut body, self.surviving.len() as u64);
        for &(edge, part) in &self.surviving {
            push_varint(&mut body, edge.src.raw());
            push_varint(&mut body, edge.dst.raw());
            push_varint(&mut body, part.index() as u64);
        }
        push_varint(&mut body, self.series.len() as u64);
        for (name, values) in &self.series {
            push_varint(&mut body, name.len() as u64);
            body.extend_from_slice(name.as_bytes());
            match values {
                SeriesValues::U64(values) => {
                    body.push(0);
                    push_varint(&mut body, values.len() as u64);
                    for &v in values {
                        push_varint(&mut body, v);
                    }
                }
                SeriesValues::F64(values) => {
                    body.push(1);
                    push_varint(&mut body, values.len() as u64);
                    for &v in values {
                        push_varint(&mut body, v.to_bits());
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + body.len() + 4);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Loads and verifies a checkpoint file.
    ///
    /// Unlike WAL segments there is no torn-tail tolerance: checkpoints
    /// are atomically renamed into place, so *any* damage — truncation,
    /// wrong magic, CRC mismatch, undecodable body — is an error. The
    /// recovery layer treats a failing load as "try the previous
    /// checkpoint in the lineage".
    ///
    /// # Errors
    ///
    /// [`StateError::Corrupt`] for every validation failure and
    /// [`StateError::Io`] for filesystem failures.
    pub fn load(path: &Path) -> Result<Self> {
        let corrupt = |offset: u64, message: String| StateError::Corrupt {
            file: path.to_path_buf(),
            offset,
            message,
        };
        let bytes = fs::read(path)?;
        if bytes.len() < CHECKPOINT_MAGIC.len() + 4 {
            return Err(corrupt(0, format!("{} bytes is too short", bytes.len())));
        }
        if bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
            return Err(corrupt(0, "bad checkpoint magic".to_string()));
        }
        let body = &bytes[CHECKPOINT_MAGIC.len()..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err(corrupt(
                CHECKPOINT_MAGIC.len() as u64,
                format!(
                    "CRC mismatch: stored {stored:#010x}, computed {:#010x}",
                    crc32(body)
                ),
            ));
        }
        Self::decode_body(body).ok_or_else(|| {
            corrupt(
                CHECKPOINT_MAGIC.len() as u64,
                "CRC-valid checkpoint body does not decode".to_string(),
            )
        })
    }

    fn decode_body(body: &[u8]) -> Option<Self> {
        let mut cursor = Cursor::new(body);
        let epoch = cursor.varint()?;
        let events_seen = cursor.varint()?;
        let num_vertices = usize::try_from(cursor.varint()?).ok()?;
        let workers = usize::try_from(cursor.varint()?).ok()?;
        let mut worker_edges = Vec::with_capacity(workers.min(1 << 16));
        for _ in 0..workers {
            worker_edges.push(decode_pair_list(&mut cursor)?);
        }
        let universe = usize::try_from(cursor.varint()?).ok()?;
        let surviving = decode_pair_list(&mut cursor)?;
        let n_series = usize::try_from(cursor.varint()?).ok()?;
        let mut series = Vec::with_capacity(n_series.min(1 << 10));
        for _ in 0..n_series {
            let name_len = usize::try_from(cursor.varint()?).ok()?;
            let name = String::from_utf8(cursor.take(name_len)?.to_vec()).ok()?;
            let kind = *cursor.take(1)?.first()?;
            let len = usize::try_from(cursor.varint()?).ok()?;
            let values = match kind {
                0 => {
                    let mut values = Vec::with_capacity(len.min(1 << 24));
                    for _ in 0..len {
                        values.push(cursor.varint()?);
                    }
                    SeriesValues::U64(values)
                }
                1 => {
                    let mut values = Vec::with_capacity(len.min(1 << 24));
                    for _ in 0..len {
                        values.push(f64::from_bits(cursor.varint()?));
                    }
                    SeriesValues::F64(values)
                }
                _ => return None,
            };
            series.push((name, values));
        }
        if !cursor.is_empty() {
            return None;
        }
        Some(Checkpoint {
            epoch,
            events_seen,
            num_vertices,
            worker_edges,
            universe,
            surviving,
            series,
        })
    }
}

fn decode_pair_list(cursor: &mut Cursor<'_>) -> Option<Vec<(Edge, PartitionId)>> {
    let count = usize::try_from(cursor.varint()?).ok()?;
    let mut pairs = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let src = cursor.varint()?;
        let dst = cursor.varint()?;
        let part = u32::try_from(cursor.varint()?).ok()?;
        pairs.push((Edge::from((src, dst)), PartitionId::new(part)));
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_partition::{EbvPartitioner, StreamConfig};

    fn sample_state() -> (DistributedGraph, DynamicPartitioner) {
        let mut partitioner = EbvPartitioner::new()
            .dynamic(StreamConfig::new(3).with_expected_vertices(32))
            .unwrap();
        let mut builder = DistributedGraph::builder(3).unwrap().with_num_vertices(32);
        for (s, d) in [(0u64, 1u64), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6), (6, 7)] {
            let part = partitioner.insert(Edge::from((s, d)));
            builder.add_edge(Edge::from((s, d)), part).unwrap();
        }
        partitioner.delete(Edge::from((2u64, 3u64))).unwrap();
        let mut distributed = builder.finish().unwrap();
        // Keep the graph consistent with the partitioner: delete the same
        // edge from whichever worker holds it.
        let holder = distributed
            .subgraphs()
            .iter()
            .find(|sg| sg.edges().contains(&Edge::from((2u64, 3u64))))
            .map(|sg| sg.part());
        if let Some(part) = holder {
            let mut batch = ebv_bsp::MutationBatch::new();
            batch.record_delete(Edge::from((2u64, 3u64)), part);
            distributed.apply_mutations(&batch).unwrap();
        }
        (distributed, partitioner)
    }

    #[test]
    fn encode_load_round_trip_is_exact() {
        let (distributed, partitioner) = sample_state();
        let series = vec![
            ("cc".to_string(), SeriesValues::U64(vec![0, 0, 2, 2, 0])),
            (
                "sssp".to_string(),
                SeriesValues::F64(vec![0.0, 1.5, f64::INFINITY, -0.0]),
            ),
        ];
        let checkpoint = Checkpoint::capture(&distributed, &partitioner, 99, series);
        let dir = std::env::temp_dir().join(format!("ebv-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint-1.ckpt");
        fs::write(&path, checkpoint.encode()).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, checkpoint);
        match &loaded.series[1].1 {
            SeriesValues::F64(values) => {
                assert!(values[2].is_infinite());
                assert!(values[3].is_sign_negative(), "-0.0 round-trips bit-exactly");
            }
            other => panic!("wrong kind: {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebuild_reproduces_the_distribution_and_partitioner() {
        let (distributed, partitioner) = sample_state();
        let checkpoint = Checkpoint::capture(&distributed, &partitioner, 7, Vec::new());
        let rebuilt = checkpoint.rebuild_graph().unwrap();
        assert!(rebuilt.same_structure(&distributed));
        assert_eq!(rebuilt.epoch(), distributed.epoch());

        let mut fresh = EbvPartitioner::new()
            .dynamic(StreamConfig::new(3).with_expected_vertices(32))
            .unwrap();
        checkpoint.restore_partitioner(&mut fresh).unwrap();
        assert_eq!(fresh.snapshot().unwrap(), partitioner.snapshot().unwrap());
    }

    #[test]
    fn any_damage_is_rejected() {
        let (distributed, partitioner) = sample_state();
        let checkpoint = Checkpoint::capture(&distributed, &partitioner, 7, Vec::new());
        let dir = std::env::temp_dir().join(format!("ebv-ckpt-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint-1.ckpt");
        let bytes = checkpoint.encode();

        // Truncation at any byte is rejected (no torn tolerance here).
        fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(
            Checkpoint::load(&path).unwrap_err(),
            StateError::Corrupt { .. }
        ));
        // A flipped bit in the body fails the CRC.
        let mut flipped = bytes.clone();
        flipped[CHECKPOINT_MAGIC.len() + 2] ^= 0x10;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            Checkpoint::load(&path).unwrap_err(),
            StateError::Corrupt { .. }
        ));
        // Zero-length file.
        fs::write(&path, b"").unwrap();
        assert!(matches!(
            Checkpoint::load(&path).unwrap_err(),
            StateError::Corrupt { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
