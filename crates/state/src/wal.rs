//! The write-ahead mutation log.
//!
//! A WAL is a sequence of **segments** (`wal-<first_epoch>.log`), each an
//! 8-byte magic followed by length-delimited frames:
//!
//! ```text
//! varint(body_len) ‖ body ‖ crc32(body) (4 bytes LE)
//! body = varint(epoch) ‖ varint(events_seen)
//!        ‖ varint(n_added)   ‖ (varint src ‖ varint dst ‖ varint part)*
//!        ‖ varint(n_removed) ‖ (varint src ‖ varint dst ‖ varint part)*
//! ```
//!
//! Varints use the shared strict LEB128 codec of [`ebv_stream::varint`],
//! so every frame has exactly one valid encoding. A reader accepts the
//! longest valid prefix of each segment: the first truncated varint, short
//! read or CRC mismatch ends the segment — that is what a torn tail from a
//! crash looks like, and the half-written frame is discarded fail-safe
//! (recovery re-derives it from the event stream). A frame whose CRC
//! *matches* but whose content misbehaves — undecodable body, or an epoch
//! that does not continue the segment's lineage — is never crash damage
//! and is reported as a hard error instead.
//!
//! A new segment is started after every checkpoint (and on every process
//! start), so a segment's frames are consumed strictly in epoch order and
//! old segments can be retired once a checkpoint covers them.

use std::fs::{self, File};
use std::path::{Path, PathBuf};

use ebv_bsp::MutationBatch;
use ebv_graph::Edge;
use ebv_partition::PartitionId;
use ebv_stream::varint;

use crate::crc::crc32;
use crate::error::{Result, StateError};
use crate::failpoint::Failpoint;

/// Magic bytes opening every WAL segment (version 1).
pub const WAL_MAGIC: [u8; 8] = *b"EBVWAL\x01\0";

/// One decoded WAL frame: the mutation batch that became `epoch`, plus the
/// cumulative raw event count through that batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// The epoch this batch produced when applied.
    pub epoch: u64,
    /// Raw stream events (inserts + deletes, pre-cancellation) consumed
    /// through the end of this batch.
    pub events_seen: u64,
    /// The batch itself, reconstructed part-for-part.
    pub batch: MutationBatch,
}

/// Encodes one frame (length prefix + body + CRC) into a buffer.
pub fn encode_frame(epoch: u64, events_seen: u64, batch: &MutationBatch) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + 12 * batch.len());
    push_varint(&mut body, epoch);
    push_varint(&mut body, events_seen);
    push_pairs(&mut body, batch.added());
    push_pairs(&mut body, batch.removed());
    let mut frame = Vec::with_capacity(body.len() + varint::MAX_LEN + 4);
    push_varint(&mut frame, body.len() as u64);
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame
}

pub(crate) fn push_varint(out: &mut Vec<u8>, value: u64) {
    varint::write_u64(out, value).expect("Vec writes are infallible");
}

fn push_pairs(out: &mut Vec<u8>, pairs: &[(Edge, PartitionId)]) {
    push_varint(out, pairs.len() as u64);
    for &(edge, part) in pairs {
        push_varint(out, edge.src.raw());
        push_varint(out, edge.dst.raw());
        push_varint(out, part.index() as u64);
    }
}

/// A strict varint cursor over an in-memory buffer, tracking its offset
/// for error reporting. Shared by the WAL and checkpoint decoders.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    offset: u64,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, offset: 0 }
    }

    pub(crate) fn offset(&self) -> u64 {
        self.offset
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads one varint; `None` for anything short of a complete,
    /// canonical encoding.
    pub(crate) fn varint(&mut self) -> Option<u64> {
        let mut rest = self.bytes;
        let mut consumed = 0u64;
        match varint::read_u64(&mut rest, &mut consumed) {
            Ok(Some(value)) => {
                self.bytes = rest;
                self.offset += consumed;
                Some(value)
            }
            _ => None,
        }
    }

    /// Takes `len` raw bytes, or `None` when the buffer is shorter.
    pub(crate) fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        if self.bytes.len() < len {
            return None;
        }
        let (head, rest) = self.bytes.split_at(len);
        self.bytes = rest;
        self.offset += len as u64;
        Some(head)
    }
}

/// Decodes a CRC-verified frame body; `None` when the body is malformed
/// (the caller reports it as corruption, since the CRC vouched for it).
fn decode_body(body: &[u8]) -> Option<WalFrame> {
    let mut cursor = Cursor::new(body);
    let epoch = cursor.varint()?;
    let events_seen = cursor.varint()?;
    let added = decode_pairs(&mut cursor)?;
    let removed = decode_pairs(&mut cursor)?;
    if !cursor.is_empty() {
        return None;
    }
    Some(WalFrame {
        epoch,
        events_seen,
        batch: MutationBatch::from_parts(added, removed),
    })
}

fn decode_pairs(cursor: &mut Cursor<'_>) -> Option<Vec<(Edge, PartitionId)>> {
    let count = cursor.varint()?;
    let count = usize::try_from(count).ok()?;
    let mut pairs = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let src = cursor.varint()?;
        let dst = cursor.varint()?;
        let part = cursor.varint()?;
        let part = u32::try_from(part).ok()?;
        pairs.push((Edge::from((src, dst)), PartitionId::new(part)));
    }
    Some(pairs)
}

/// Reads the longest valid frame prefix of one segment file.
///
/// Returns the decoded frames. Truncation, a torn varint or a CRC
/// mismatch ends the read silently (torn tail). A segment shorter than
/// the magic — including a zero-length file — is an empty valid prefix.
///
/// # Errors
///
/// [`StateError::Corrupt`] when a full-length magic is wrong or a
/// CRC-verified frame fails to decode, [`StateError::EpochRegression`]
/// when a CRC-verified frame's epoch fails to increase within the
/// segment, and [`StateError::Io`] on read failures.
pub fn read_segment(path: &Path) -> Result<Vec<WalFrame>> {
    let bytes = fs::read(path)?;
    if bytes.len() < WAL_MAGIC.len() {
        // A crash while writing the magic (or an empty placeholder file).
        return Ok(Vec::new());
    }
    if bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StateError::Corrupt {
            file: path.to_path_buf(),
            offset: 0,
            message: format!("bad WAL magic {:?}", &bytes[..WAL_MAGIC.len()]),
        });
    }
    let mut cursor = Cursor::new(&bytes[WAL_MAGIC.len()..]);
    let mut frames: Vec<WalFrame> = Vec::new();
    loop {
        if cursor.is_empty() {
            return Ok(frames); // clean end at a frame boundary
        }
        let frame_offset = WAL_MAGIC.len() as u64 + cursor.offset();
        let Some(body_len) = cursor.varint() else {
            return Ok(frames); // torn length prefix
        };
        let Ok(body_len) = usize::try_from(body_len) else {
            return Ok(frames); // a length this absurd is torn garbage
        };
        let Some(body) = cursor.take(body_len) else {
            return Ok(frames); // torn body
        };
        let Some(crc_bytes) = cursor.take(4) else {
            return Ok(frames); // torn checksum
        };
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Ok(frames); // torn or bit-rotted frame: discard fail-safe
        }
        // From here on the CRC vouches for the content: failures are
        // corruption (or a writer bug), never a torn tail.
        let frame = decode_body(body).ok_or_else(|| StateError::Corrupt {
            file: path.to_path_buf(),
            offset: frame_offset,
            message: "CRC-valid frame body does not decode".to_string(),
        })?;
        if let Some(last) = frames.last() {
            if frame.epoch != last.epoch + 1 {
                return Err(StateError::EpochRegression {
                    file: path.to_path_buf(),
                    expected: last.epoch + 1,
                    found: frame.epoch,
                });
            }
        }
        frames.push(frame);
    }
}

/// Lists the WAL segments of `dir` in ascending first-epoch order.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(first_epoch) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((first_epoch, path));
        }
    }
    segments.sort();
    Ok(segments)
}

/// The append side of the WAL: one open segment at a time, rotated at
/// every checkpoint. Segments are created lazily on the first append so
/// the file name can carry its first frame's epoch.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    failpoint: Failpoint,
    current: Option<File>,
}

impl WalWriter {
    /// A writer over `dir` with no open segment.
    pub fn new(dir: PathBuf, failpoint: Failpoint) -> Self {
        WalWriter {
            dir,
            failpoint,
            current: None,
        }
    }

    /// Appends one frame, opening a fresh segment named after `epoch` if
    /// none is open. Returns the bytes written (including magic when a
    /// segment was opened).
    ///
    /// # Errors
    ///
    /// [`StateError::Io`] and [`StateError::InjectedCrash`].
    pub fn append(&mut self, epoch: u64, events_seen: u64, batch: &MutationBatch) -> Result<u64> {
        let mut written = 0u64;
        if self.current.is_none() {
            // `create` truncates: the only way the name can collide is a
            // pre-crash segment whose first frame never became valid, and
            // recovery has already discarded everything in it.
            let mut file = File::create(self.dir.join(format!("wal-{epoch}.log")))?;
            self.failpoint.write_all(&mut file, &WAL_MAGIC)?;
            written += WAL_MAGIC.len() as u64;
            self.current = Some(file);
        }
        let frame = encode_frame(epoch, events_seen, batch);
        let file = self.current.as_mut().expect("segment opened above");
        self.failpoint.write_all(file, &frame)?;
        Ok(written + frame.len() as u64)
    }

    /// Closes the open segment; the next append starts a new one. Called
    /// at checkpoint boundaries so retired epochs live in retired files.
    pub fn rotate(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ebv-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(added: &[(u64, u64, u32)], removed: &[(u64, u64, u32)]) -> MutationBatch {
        let pairs = |list: &[(u64, u64, u32)]| {
            list.iter()
                .map(|&(s, d, p)| (Edge::from((s, d)), PartitionId::new(p)))
                .collect()
        };
        MutationBatch::from_parts(pairs(added), pairs(removed))
    }

    #[test]
    fn frames_round_trip_through_a_segment() {
        let dir = temp_dir("roundtrip");
        let mut writer = WalWriter::new(dir.clone(), Failpoint::disarmed());
        let batches = [
            batch(&[(0, 1, 0), (1, 2, 1)], &[]),
            batch(&[(5, 9, 3)], &[(0, 1, 0)]),
            batch(&[], &[]),
        ];
        for (i, b) in batches.iter().enumerate() {
            writer.append(i as u64 + 1, (i as u64 + 1) * 10, b).unwrap();
        }
        let frames = read_segment(&dir.join("wal-1.log")).unwrap();
        assert_eq!(frames.len(), 3);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame.epoch, i as u64 + 1);
            assert_eq!(frame.events_seen, (i as u64 + 1) * 10);
            assert_eq!(frame.batch, batches[i]);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_truncation_point_yields_the_valid_prefix() {
        let dir = temp_dir("torn");
        let mut writer = WalWriter::new(dir.clone(), Failpoint::disarmed());
        writer.append(1, 2, &batch(&[(3, 4, 0)], &[])).unwrap();
        writer.append(2, 4, &batch(&[(4, 5, 1)], &[])).unwrap();
        let path = dir.join("wal-1.log");
        let full = fs::read(&path).unwrap();
        let first_frame_end = {
            let frames1 = encode_frame(1, 2, &batch(&[(3, 4, 0)], &[]));
            WAL_MAGIC.len() + frames1.len()
        };
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let frames = read_segment(&path).unwrap();
            let expected = if cut >= full.len() {
                2
            } else if cut >= first_frame_end {
                1
            } else {
                0
            };
            assert_eq!(frames.len(), expected, "cut at byte {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_tail_frame_is_discarded_but_regression_errors() {
        let dir = temp_dir("crc");
        let path = dir.join("wal-1.log");
        let mut writer = WalWriter::new(dir.clone(), Failpoint::disarmed());
        writer.append(1, 1, &batch(&[(1, 2, 0)], &[])).unwrap();
        writer.append(2, 2, &batch(&[(2, 3, 0)], &[])).unwrap();
        // Flip one bit inside the second frame's body: CRC mismatch, torn.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 6;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let frames = read_segment(&path).unwrap();
        assert_eq!(frames.len(), 1, "bit-rotted frame discarded fail-safe");

        // A CRC-*valid* frame that repeats epoch 1 is a lineage fork.
        let mut writer = WalWriter::new(dir.clone(), Failpoint::disarmed());
        let _ = fs::remove_file(&path);
        writer.append(1, 1, &batch(&[(1, 2, 0)], &[])).unwrap();
        writer.append(1, 2, &batch(&[(9, 9, 0)], &[])).unwrap();
        let err = read_segment(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StateError::EpochRegression {
                    expected: 2,
                    found: 1,
                    ..
                }
            ),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_length_and_foreign_files() {
        let dir = temp_dir("degenerate");
        let path = dir.join("wal-0.log");
        fs::write(&path, b"").unwrap();
        assert!(read_segment(&path).unwrap().is_empty(), "zero-length file");
        fs::write(&path, b"NOTAWAL!extra").unwrap();
        assert!(matches!(
            read_segment(&path).unwrap_err(),
            StateError::Corrupt { offset: 0, .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
