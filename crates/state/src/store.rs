//! The durable store: recovery, checkpoint cadence and the live hook.
//!
//! [`DurableState::open`] is the single entry point. It scans a state
//! directory, loads the newest checkpoint that still verifies (falling
//! back along the manifest lineage), reads the WAL suffix past it, and
//! returns both the live store and a [`RecoveredState`] describing exactly
//! what survived. The caller rebuilds its in-memory world from the
//! checkpoint, replays the WAL frames through
//! `DistributedGraph::apply_mutations`, fast-forwards its event source by
//! [`RecoveredState::events_seen`], and continues — the lineage never
//! forks.
//!
//! Live operation goes through the [`DurabilityHook`] seam:
//! [`DurabilityHook::log_batch`] appends a WAL frame **before** the batch
//! is applied, and [`DurabilityHook::epoch_durable`] runs after the epoch
//! committed, writing a full checkpoint every `checkpoint_every` epochs
//! (tmp + atomic rename, manifest updated, old segments retired).
//!
//! Durability model: every append and checkpoint is flushed, so state
//! survives a killed **process** at any instant (the crash-at-any-point
//! property test drives exactly this via [`Failpoint`]). Writes are not
//! `fsync`ed, so a kernel panic or power failure may lose the tail — the
//! WAL's valid-prefix reader degrades that to "resume from the last
//! durable epoch", never to corruption.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ebv_bsp::{DistributedGraph, DurabilityHook, MutationBatch};
use ebv_graph::Edge;
use ebv_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use ebv_partition::{DynamicPartitioner, PartitionId};

use crate::checkpoint::{Checkpoint, SeriesValues};
use crate::error::{Result, StateError};
use crate::failpoint::Failpoint;
use crate::wal::{self, WalFrame, WalWriter};

/// The manifest file name inside a state directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// First line of a valid manifest.
const MANIFEST_HEADER: &str = "ebv-manifest v1";
/// How many checkpoints (newest first) the manifest retains.
const RETAINED_CHECKPOINTS: usize = 2;

/// What [`DurableState::open`] found on disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// The newest checkpoint that verified, if any.
    pub checkpoint: Option<Checkpoint>,
    /// WAL frames past the checkpoint, in strict epoch order starting at
    /// `checkpoint.epoch + 1` (or epoch 1 when there is no checkpoint).
    pub frames: Vec<WalFrame>,
}

impl RecoveredState {
    /// The epoch the process resumes at after replaying [`Self::frames`].
    pub fn resume_epoch(&self) -> u64 {
        self.frames
            .last()
            .map(|f| f.epoch)
            .or_else(|| self.checkpoint.as_ref().map(|c| c.epoch))
            .unwrap_or(0)
    }

    /// Raw stream events already consumed by the recovered state; a
    /// deterministic event source should skip this many events before
    /// producing new ones.
    pub fn events_seen(&self) -> u64 {
        self.frames
            .last()
            .map(|f| f.events_seen)
            .or_else(|| self.checkpoint.as_ref().map(|c| c.events_seen))
            .unwrap_or(0)
    }

    /// Number of WAL epochs recovery has to replay.
    pub fn replayed_epochs(&self) -> usize {
        self.frames.len()
    }

    /// Whether the directory held no durable state at all.
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_none() && self.frames.is_empty()
    }

    /// Computes the partitioner's state at the resume point: the
    /// checkpoint's surviving pairs with every WAL frame applied **as
    /// recorded** — removals pop the most recent copy of their edge (the
    /// partitioner's LIFO contract), insertions append with their logged
    /// placement. Removals apply before insertions within a frame, because
    /// a delete-then-reinsert batch records the same edge in both lists
    /// and the delete refers to the pre-batch copy.
    ///
    /// Feed the result to [`DynamicPartitioner::restore`] on a freshly
    /// configured partitioner; placement then continues bit-identically to
    /// the pre-crash run.
    ///
    /// # Errors
    ///
    /// [`StateError::InvalidState`] when a logged removal has no live copy
    /// or disagrees with the recorded placement — the WAL and checkpoint
    /// contradict each other, which no crash window can produce.
    pub fn resume_partition_state(&self) -> Result<(usize, Vec<(Edge, PartitionId)>)> {
        let mut universe = self.checkpoint.as_ref().map(|c| c.universe).unwrap_or(0);
        let mut pairs = self
            .checkpoint
            .as_ref()
            .map(|c| c.surviving.clone())
            .unwrap_or_default();
        for frame in &self.frames {
            for &(edge, part) in frame.batch.removed() {
                let Some(pos) = pairs.iter().rposition(|&(e, _)| e == edge) else {
                    return Err(StateError::InvalidState {
                        message: format!(
                            "WAL epoch {} removes {edge:?}, which has no live copy",
                            frame.epoch
                        ),
                    });
                };
                if pairs[pos].1 != part {
                    return Err(StateError::InvalidState {
                        message: format!(
                            "WAL epoch {} removes {edge:?} from {part:?}, but its newest \
                             copy lives on {:?}",
                            frame.epoch, pairs[pos].1
                        ),
                    });
                }
                pairs.remove(pos);
            }
            for &(edge, part) in frame.batch.added() {
                let top = edge.src.raw().max(edge.dst.raw()) + 1;
                universe = universe.max(usize::try_from(top).unwrap_or(usize::MAX));
                pairs.push((edge, part));
            }
        }
        Ok((universe, pairs))
    }
}

/// State behind the store's mutex; see [`DurableState`].
#[derive(Debug)]
struct Inner {
    wal: WalWriter,
    /// Epoch of the newest on-disk checkpoint.
    last_checkpoint_epoch: Option<u64>,
    /// Warm series staged for the next checkpoint, keyed (and therefore
    /// serialized) by name.
    series: BTreeMap<String, SeriesValues>,
    /// Full known lineage, oldest first: `(epoch, file_name)`.
    lineage: Vec<(u64, String)>,
}

/// The live durable state plane; see the [module documentation](self).
#[derive(Debug)]
pub struct DurableState {
    dir: PathBuf,
    checkpoint_every: u64,
    failpoint: Failpoint,
    inner: Mutex<Inner>,
    wal_bytes: Arc<Counter>,
    checkpoint_seconds: Arc<Histogram>,
    checkpoint_epoch: Arc<Gauge>,
}

impl DurableState {
    /// Opens (creating if needed) the state directory and recovers
    /// whatever it holds. `checkpoint_every` is the epoch cadence of
    /// automatic checkpoints taken by [`DurabilityHook::epoch_durable`].
    ///
    /// # Errors
    ///
    /// [`StateError::InvalidState`] for a zero cadence, and every recovery
    /// failure described on [`Checkpoint::load`] and
    /// [`wal::read_segment`].
    pub fn open(dir: &Path, checkpoint_every: usize) -> Result<(Self, RecoveredState)> {
        Self::open_with_failpoint(dir, checkpoint_every, Failpoint::disarmed())
    }

    /// [`Self::open`] with an explicit fault-injection budget; the test
    /// harness uses this to crash the writer after any byte.
    ///
    /// # Errors
    ///
    /// As for [`Self::open`].
    pub fn open_with_failpoint(
        dir: &Path,
        checkpoint_every: usize,
        failpoint: Failpoint,
    ) -> Result<(Self, RecoveredState)> {
        if checkpoint_every == 0 {
            return Err(StateError::InvalidState {
                message: "checkpoint cadence must be at least 1 epoch".to_string(),
            });
        }
        fs::create_dir_all(dir)?;
        remove_stray_tmp_files(dir)?;

        let lineage = match read_manifest(dir)? {
            Some(lineage) => lineage,
            None => scan_for_checkpoints(dir)?,
        };
        let checkpoint = load_newest_valid(dir, &lineage)?;
        let anchor = checkpoint.as_ref().map(|c| c.epoch).unwrap_or(0);
        let frames = read_wal_suffix(dir, anchor)?;

        let registry = MetricsRegistry::global();
        registry
            .gauge("ebv_recovery_replayed_epochs")
            .set(frames.len() as f64);
        let checkpoint_epoch = registry.gauge("ebv_checkpoint_epoch");
        checkpoint_epoch.set(anchor as f64);

        let series = checkpoint
            .as_ref()
            .map(|c| c.series.iter().cloned().collect())
            .unwrap_or_default();
        let store = DurableState {
            dir: dir.to_path_buf(),
            checkpoint_every: checkpoint_every as u64,
            failpoint: failpoint.clone(),
            inner: Mutex::new(Inner {
                wal: WalWriter::new(dir.to_path_buf(), failpoint),
                last_checkpoint_epoch: checkpoint.as_ref().map(|c| c.epoch),
                series,
                lineage,
            }),
            wal_bytes: registry.counter("ebv_wal_bytes_total"),
            checkpoint_seconds: registry.histogram("ebv_checkpoint_seconds"),
            checkpoint_epoch,
        };
        Ok((store, RecoveredState { checkpoint, frames }))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stages (or replaces) a named warm series for the next checkpoint.
    /// Staged series ride every checkpoint until restaged; recovery hands
    /// them back through [`Checkpoint::series`](crate::Checkpoint).
    pub fn stage_series(&self, name: &str, values: SeriesValues) {
        let mut inner = self.inner.lock().expect("state lock");
        inner.series.insert(name.to_string(), values);
    }

    /// Writes a checkpoint of the given state **now**, regardless of
    /// cadence. Returns `false` (and does nothing) when the newest
    /// checkpoint already covers this epoch.
    ///
    /// The write is atomic: body to `*.tmp`, flush, rename, then the
    /// manifest the same way. A crash anywhere in between leaves the
    /// previous checkpoint authoritative and the WAL still covering the
    /// difference.
    ///
    /// # Errors
    ///
    /// [`StateError::InvalidState`] when `distributed` is *older* than the
    /// newest checkpoint (the caller is replaying history into a live
    /// store), plus I/O and injected-crash failures.
    pub fn checkpoint_now(
        &self,
        distributed: &DistributedGraph,
        partitioner: &DynamicPartitioner,
        events_seen: u64,
    ) -> Result<bool> {
        let started = Instant::now();
        let mut inner = self.inner.lock().expect("state lock");
        let epoch = distributed.epoch() as u64;
        if let Some(last) = inner.last_checkpoint_epoch {
            if epoch == last {
                return Ok(false);
            }
            if epoch < last {
                return Err(StateError::InvalidState {
                    message: format!(
                        "refusing checkpoint at epoch {epoch}: newest on disk is {last}"
                    ),
                });
            }
        }

        let series = inner
            .series
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let checkpoint = Checkpoint::capture(distributed, partitioner, events_seen, series);
        let file_name = format!("checkpoint-{epoch}.ckpt");
        let tmp = self.dir.join(format!("{file_name}.tmp"));
        let mut file = File::create(&tmp)?;
        self.failpoint.write_all(&mut file, &checkpoint.encode())?;
        drop(file);
        self.failpoint.rename(&tmp, &self.dir.join(&file_name))?;

        inner.lineage.push((epoch, file_name));
        let retained_from = inner.lineage.len().saturating_sub(RETAINED_CHECKPOINTS);
        write_manifest(&self.dir, &inner.lineage[retained_from..], &self.failpoint)?;

        // Retention, after the manifest no longer references the dropped
        // files. Failures here are ignored: stray files are skipped (or
        // re-deleted) by the next open, never misread.
        let dropped: Vec<String> = inner
            .lineage
            .drain(..retained_from)
            .map(|(_, name)| name)
            .collect();
        for name in dropped {
            let _ = fs::remove_file(self.dir.join(name));
        }
        let oldest_retained = inner.lineage.first().map(|&(e, _)| e).unwrap_or(epoch);
        retire_wal_segments(&self.dir, oldest_retained);
        inner.wal.rotate();
        inner.last_checkpoint_epoch = Some(epoch);

        self.checkpoint_seconds
            .observe(started.elapsed().as_secs_f64());
        self.checkpoint_epoch.set(epoch as f64);
        Ok(true)
    }
}

impl DurabilityHook for DurableState {
    fn log_batch(
        &self,
        epoch: u64,
        events_seen: u64,
        batch: &MutationBatch,
    ) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("state lock");
        let bytes = inner.wal.append(epoch, events_seen, batch)?;
        self.wal_bytes.add(bytes);
        Ok(())
    }

    fn epoch_durable(
        &self,
        distributed: &DistributedGraph,
        partitioner: &DynamicPartitioner,
        events_seen: u64,
    ) -> std::io::Result<()> {
        let due = {
            let inner = self.inner.lock().expect("state lock");
            let last = inner.last_checkpoint_epoch.unwrap_or(0);
            distributed.epoch() as u64 >= last + self.checkpoint_every
        };
        if due {
            self.checkpoint_now(distributed, partitioner, events_seen)?;
        }
        Ok(())
    }
}

/// Deletes leftover `*.tmp` files from a crashed atomic write.
fn remove_stray_tmp_files(dir: &Path) -> Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|ext| ext == "tmp") {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// Parses the manifest: `Ok(None)` when absent (fresh directory, or a
/// pre-manifest crash — the caller falls back to a directory scan).
fn read_manifest(dir: &Path) -> Result<Option<Vec<(u64, String)>>> {
    let path = dir.join(MANIFEST_FILE);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err.into()),
    };
    let corrupt = |message: String| StateError::Corrupt {
        file: path.clone(),
        offset: 0,
        message,
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt(format!("missing header {MANIFEST_HEADER:?}")));
    }
    let mut entries: Vec<(u64, String)> = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let parsed = (|| {
            if tokens.next() != Some("checkpoint") {
                return None;
            }
            let epoch = tokens.next()?.strip_prefix("epoch=")?.parse::<u64>().ok()?;
            let file = tokens.next()?.strip_prefix("file=")?.to_string();
            let parent = tokens.next()?.strip_prefix("parent=")?;
            if parent != "none" && parent.parse::<u64>().is_err() {
                return None;
            }
            Some((epoch, file))
        })();
        let Some((epoch, file)) = parsed else {
            return Err(corrupt(format!("unparseable line {line:?}")));
        };
        if let Some(&(last, _)) = entries.last() {
            if epoch <= last {
                return Err(corrupt(format!(
                    "lineage not ascending: epoch {epoch} after {last}"
                )));
            }
        }
        entries.push((epoch, file));
    }
    Ok(Some(entries))
}

/// Atomically rewrites the manifest with the retained lineage.
fn write_manifest(dir: &Path, entries: &[(u64, String)], failpoint: &Failpoint) -> Result<()> {
    let mut text = String::from(MANIFEST_HEADER);
    text.push('\n');
    let mut parent: Option<u64> = None;
    for &(epoch, ref file) in entries {
        let parent_text = parent.map_or_else(|| "none".to_string(), |p| p.to_string());
        text.push_str(&format!(
            "checkpoint epoch={epoch} file={file} parent={parent_text}\n"
        ));
        parent = Some(epoch);
    }
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let mut file = File::create(&tmp)?;
    failpoint.write_all(&mut file, text.as_bytes())?;
    drop(file);
    failpoint.rename(&tmp, &dir.join(MANIFEST_FILE))
}

/// When no manifest exists, rebuilds a lineage from `checkpoint-*.ckpt`
/// files on disk (ascending epoch order).
fn scan_for_checkpoints(dir: &Path) -> Result<Vec<(u64, String)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(epoch) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((epoch, name.to_string()));
        }
    }
    found.sort();
    Ok(found)
}

/// Loads the newest lineage entry that verifies, walking backwards on
/// failure. A non-empty lineage in which *nothing* loads is a hard error —
/// that cannot be explained by any crash window.
fn load_newest_valid(dir: &Path, lineage: &[(u64, String)]) -> Result<Option<Checkpoint>> {
    let mut last_failure: Option<StateError> = None;
    for &(epoch, ref file) in lineage.iter().rev() {
        match Checkpoint::load(&dir.join(file)) {
            Ok(checkpoint) if checkpoint.epoch == epoch => return Ok(Some(checkpoint)),
            Ok(checkpoint) => {
                last_failure = Some(StateError::Corrupt {
                    file: dir.join(file),
                    offset: 0,
                    message: format!(
                        "manifest says epoch {epoch} but file holds {}",
                        checkpoint.epoch
                    ),
                });
            }
            Err(err) => last_failure = Some(err),
        }
    }
    match last_failure {
        None => Ok(None),
        Some(err) => Err(err),
    }
}

/// Reads every WAL segment and stitches the strictly consecutive suffix
/// past `anchor` (the recovered checkpoint's epoch, or 0).
fn read_wal_suffix(dir: &Path, anchor: u64) -> Result<Vec<WalFrame>> {
    let mut frames: Vec<WalFrame> = Vec::new();
    let mut expected = anchor + 1;
    for (_, path) in wal::list_segments(dir)? {
        for frame in wal::read_segment(&path)? {
            if frame.epoch < expected {
                continue; // already covered by the checkpoint or an earlier segment
            }
            if frame.epoch > expected {
                return Err(StateError::EpochRegression {
                    file: path,
                    expected,
                    found: frame.epoch,
                });
            }
            expected += 1;
            frames.push(frame);
        }
    }
    Ok(frames)
}

/// Deletes WAL segments made redundant by the retained checkpoints: a
/// segment is safe to drop once the *next* segment already starts at or
/// before `oldest_retained + 1`. The newest segment always survives.
fn retire_wal_segments(dir: &Path, oldest_retained: u64) {
    let Ok(segments) = wal::list_segments(dir) else {
        return;
    };
    for pair in segments.windows(2) {
        if pair[1].0 <= oldest_retained + 1 {
            let _ = fs::remove_file(&pair[0].1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_graph::Edge;
    use ebv_partition::{EbvPartitioner, PartitionId, StreamConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ebv-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch(added: &[(u64, u64, u32)], removed: &[(u64, u64, u32)]) -> MutationBatch {
        let pairs = |list: &[(u64, u64, u32)]| {
            list.iter()
                .map(|&(s, d, p)| (Edge::from((s, d)), PartitionId::new(p)))
                .collect()
        };
        MutationBatch::from_parts(pairs(added), pairs(removed))
    }

    /// A small live world: partitioner + distribution kept in lockstep
    /// through `epochs` single-edge epochs.
    fn churned_world(epochs: usize) -> (DistributedGraph, DynamicPartitioner, u64) {
        let mut partitioner = EbvPartitioner::new()
            .dynamic(StreamConfig::new(3).with_expected_vertices(64))
            .unwrap();
        let mut distributed = DistributedGraph::builder(3)
            .unwrap()
            .with_num_vertices(64)
            .finish()
            .unwrap();
        let mut events = 0u64;
        for i in 0..epochs as u64 {
            let edge = Edge::from((i % 13, (i * 7 + 1) % 13));
            let part = partitioner.insert(edge);
            let mut batch = MutationBatch::new();
            batch.record_insert(edge, part);
            distributed.apply_mutations(&batch).unwrap();
            events += 1;
        }
        (distributed, partitioner, events)
    }

    #[test]
    fn empty_directory_recovers_to_nothing() {
        let dir = temp_dir("empty");
        let (_store, recovered) = DurableState::open(&dir, 4).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(recovered.resume_epoch(), 0);
        assert_eq!(recovered.events_seen(), 0);
        assert_eq!(recovered.replayed_epochs(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_cadence_is_rejected() {
        let dir = temp_dir("cadence");
        assert!(matches!(
            DurableState::open(&dir, 0).unwrap_err(),
            StateError::InvalidState { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_only_recovery_replays_from_epoch_one() {
        let dir = temp_dir("wal-only");
        {
            let (store, recovered) = DurableState::open(&dir, 100).unwrap();
            assert!(recovered.is_empty());
            store
                .log_batch(1, 2, &batch(&[(0, 1, 0), (1, 2, 1)], &[]))
                .unwrap();
            store.log_batch(2, 3, &batch(&[], &[(0, 1, 0)])).unwrap();
            store.log_batch(3, 5, &batch(&[(4, 5, 2)], &[])).unwrap();
        }
        let (_store, recovered) = DurableState::open(&dir, 100).unwrap();
        assert!(recovered.checkpoint.is_none());
        assert_eq!(recovered.replayed_epochs(), 3);
        assert_eq!(recovered.resume_epoch(), 3);
        assert_eq!(recovered.events_seen(), 5);
        assert_eq!(recovered.frames[1].batch, batch(&[], &[(0, 1, 0)]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_only_recovery_restores_the_world() {
        let dir = temp_dir("ckpt-only");
        let (distributed, partitioner, events) = churned_world(9);
        {
            let (store, _) = DurableState::open(&dir, 4).unwrap();
            store.stage_series("cc", SeriesValues::U64(vec![1, 2, 3]));
            assert!(store
                .checkpoint_now(&distributed, &partitioner, events)
                .unwrap());
            // Same epoch again: a no-op, not an error.
            assert!(!store
                .checkpoint_now(&distributed, &partitioner, events)
                .unwrap());
        }
        let (_store, recovered) = DurableState::open(&dir, 4).unwrap();
        assert_eq!(recovered.replayed_epochs(), 0);
        let checkpoint = recovered.checkpoint.expect("checkpoint recovered");
        assert_eq!(checkpoint.epoch, distributed.epoch() as u64);
        assert_eq!(checkpoint.events_seen, events);
        assert_eq!(
            checkpoint.series,
            vec![("cc".to_string(), SeriesValues::U64(vec![1, 2, 3]))]
        );
        let rebuilt = checkpoint.rebuild_graph().unwrap();
        assert!(rebuilt.same_structure(&distributed));
        assert_eq!(rebuilt.epoch(), distributed.epoch());
        let mut fresh = EbvPartitioner::new()
            .dynamic(StreamConfig::new(3).with_expected_vertices(64))
            .unwrap();
        checkpoint.restore_partitioner(&mut fresh).unwrap();
        assert_eq!(fresh.snapshot().unwrap(), partitioner.snapshot().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_plus_wal_suffix_recovers_both() {
        let dir = temp_dir("ckpt-plus-wal");
        let (distributed, partitioner, events) = churned_world(4);
        {
            let (store, _) = DurableState::open(&dir, 100).unwrap();
            store
                .checkpoint_now(&distributed, &partitioner, events)
                .unwrap();
            let next = distributed.epoch() as u64 + 1;
            store
                .log_batch(next, events + 1, &batch(&[(20, 21, 0)], &[]))
                .unwrap();
            store
                .log_batch(next + 1, events + 2, &batch(&[(21, 22, 1)], &[]))
                .unwrap();
        }
        let (_store, recovered) = DurableState::open(&dir, 100).unwrap();
        assert_eq!(
            recovered.checkpoint.as_ref().map(|c| c.epoch),
            Some(distributed.epoch() as u64)
        );
        assert_eq!(recovered.replayed_epochs(), 2);
        assert_eq!(recovered.resume_epoch(), distributed.epoch() as u64 + 2);
        assert_eq!(recovered.events_seen(), events + 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_length_wal_segment_is_harmless() {
        let dir = temp_dir("zero-wal");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("wal-1.log"), b"").unwrap();
        let (_store, recovered) = DurableState::open(&dir, 4).unwrap();
        assert!(recovered.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_valid_epoch_gap_is_a_hard_error() {
        let dir = temp_dir("gap");
        {
            let (store, _) = DurableState::open(&dir, 100).unwrap();
            // Epoch 5 with no checkpoint and no epochs 1–4: the frame is
            // intact (CRC passes) but applying it would fork the lineage.
            store.log_batch(5, 5, &batch(&[(1, 2, 0)], &[])).unwrap();
        }
        let err = DurableState::open(&dir, 100).unwrap_err();
        assert!(
            matches!(
                err,
                StateError::EpochRegression {
                    expected: 1,
                    found: 5,
                    ..
                }
            ),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_partition_state_applies_removals_before_insertions() {
        use crate::wal::WalFrame;
        // Epoch 1 inserts X→0 and Y→1; epoch 2 deletes X's old copy and
        // re-inserts X on partition 2 in the same batch. The recorded
        // removal must pop the *pre-batch* copy, keeping the re-insert.
        let recovered = RecoveredState {
            checkpoint: None,
            frames: vec![
                WalFrame {
                    epoch: 1,
                    events_seen: 2,
                    batch: batch(&[(7, 3, 0), (3, 4, 1)], &[]),
                },
                WalFrame {
                    epoch: 2,
                    events_seen: 4,
                    batch: batch(&[(7, 3, 2)], &[(7, 3, 0)]),
                },
            ],
        };
        let (universe, pairs) = recovered.resume_partition_state().unwrap();
        assert_eq!(universe, 8);
        assert_eq!(
            pairs,
            vec![
                (Edge::from((3u64, 4u64)), PartitionId::new(1)),
                (Edge::from((7u64, 3u64)), PartitionId::new(2)),
            ]
        );

        // A removal whose placement contradicts the live copy is evidence
        // of a forked lineage, not a crash: hard error.
        let broken = RecoveredState {
            checkpoint: None,
            frames: vec![WalFrame {
                epoch: 1,
                events_seen: 2,
                batch: batch(&[(1, 2, 0)], &[(9, 9, 0)]),
            }],
        };
        assert!(matches!(
            broken.resume_partition_state().unwrap_err(),
            StateError::InvalidState { .. }
        ));
    }

    #[test]
    fn stray_tmp_files_are_cleaned_and_checkpoints_are_retained() {
        let dir = temp_dir("retention");
        let (store, _) = DurableState::open(&dir, 100).unwrap();
        fs::write(dir.join("checkpoint-9.ckpt.tmp"), b"half").unwrap();

        let mut partitioner = EbvPartitioner::new()
            .dynamic(StreamConfig::new(2).with_expected_vertices(32))
            .unwrap();
        let mut distributed = DistributedGraph::builder(2)
            .unwrap()
            .with_num_vertices(32)
            .finish()
            .unwrap();
        let mut events = 0u64;
        for round in 0..3u64 {
            for i in 0..2u64 {
                let edge = Edge::from((round * 2 + i, round * 2 + i + 1));
                let part = partitioner.insert(edge);
                let mut b = MutationBatch::new();
                b.record_insert(edge, part);
                store
                    .log_batch(distributed.epoch() as u64 + 1, events + 1, &b)
                    .unwrap();
                distributed.apply_mutations(&b).unwrap();
                events += 1;
            }
            store
                .checkpoint_now(&distributed, &partitioner, events)
                .unwrap();
        }
        // Only the newest two checkpoints survive on disk and in the
        // manifest; older WAL segments are retired.
        let on_disk = scan_for_checkpoints(&dir).unwrap();
        assert_eq!(
            on_disk.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![4, 6]
        );
        let manifest = read_manifest(&dir).unwrap().unwrap();
        assert_eq!(
            manifest.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
            vec![4, 6]
        );

        // A fresh open recovers the newest checkpoint cleanly (and deletes
        // the stray tmp file).
        let (_s2, recovered) = DurableState::open(&dir, 100).unwrap();
        assert_eq!(recovered.checkpoint.as_ref().map(|c| c.epoch), Some(6));
        assert_eq!(recovered.replayed_epochs(), 0);
        assert!(!dir.join("checkpoint-9.ckpt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_along_the_lineage() {
        let dir = temp_dir("fallback");
        let (store, _) = DurableState::open(&dir, 100).unwrap();
        let (distributed, partitioner, events) = churned_world(3);
        store
            .checkpoint_now(&distributed, &partitioner, events)
            .unwrap();
        let (distributed2, partitioner2, events2) = churned_world(5);
        store
            .checkpoint_now(&distributed2, &partitioner2, events2)
            .unwrap();

        // Rot the newest checkpoint: recovery must fall back to epoch 3.
        let newest = dir.join("checkpoint-5.ckpt");
        let mut bytes = fs::read(&newest).unwrap();
        let len = bytes.len();
        bytes[len - 10] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (_s2, recovered) = DurableState::open(&dir, 100).unwrap();
        assert_eq!(recovered.checkpoint.map(|c| c.epoch), Some(3));

        // Rot both: with a manifest full of unloadable checkpoints,
        // recovery refuses rather than silently starting empty.
        let older = dir.join("checkpoint-3.ckpt");
        let mut bytes = fs::read(&older).unwrap();
        let len = bytes.len();
        bytes[len - 10] ^= 0x01;
        fs::write(&older, &bytes).unwrap();
        assert!(matches!(
            DurableState::open(&dir, 100).unwrap_err(),
            StateError::Corrupt { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_checkpoint_write_is_rejected() {
        let dir = temp_dir("stale");
        let (store, _) = DurableState::open(&dir, 100).unwrap();
        let (new_world, new_part, _) = churned_world(6);
        store.checkpoint_now(&new_world, &new_part, 6).unwrap();
        let (old_world, old_part, _) = churned_world(2);
        assert!(matches!(
            store.checkpoint_now(&old_world, &old_part, 2).unwrap_err(),
            StateError::InvalidState { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_during_checkpoint_leaves_the_previous_one_authoritative() {
        let dir = temp_dir("crash-ckpt");
        let (distributed, partitioner, events) = churned_world(4);
        let total_units = {
            let (store, _) = DurableState::open(&dir, 100).unwrap();
            let fp = Failpoint::disarmed();
            let probe = temp_dir("crash-ckpt-probe");
            let (probe_store, _) =
                DurableState::open_with_failpoint(&probe, 100, fp.clone()).unwrap();
            probe_store
                .checkpoint_now(&distributed, &partitioner, events)
                .unwrap();
            let _ = fs::remove_dir_all(&probe);
            drop(store);
            let _ = fs::remove_dir_all(&dir);
            fp.units_used()
        };
        // Crash at every unit of the checkpoint write path: afterwards the
        // directory must either hold the full checkpoint or recover empty —
        // never anything in between.
        for budget in 0..total_units {
            let _ = fs::remove_dir_all(&dir);
            let fp = Failpoint::crash_after(budget);
            let (store, _) = DurableState::open_with_failpoint(&dir, 100, fp).unwrap();
            let err = store
                .checkpoint_now(&distributed, &partitioner, events)
                .unwrap_err();
            assert!(
                matches!(err, StateError::InjectedCrash),
                "budget {budget}: {err}"
            );
            let (_s2, recovered) = DurableState::open(&dir, 100).unwrap();
            match recovered.checkpoint {
                None => assert_eq!(recovered.replayed_epochs(), 0, "budget {budget}"),
                Some(ckpt) => {
                    assert_eq!(ckpt.epoch, distributed.epoch() as u64, "budget {budget}");
                    assert!(ckpt.rebuild_graph().unwrap().same_structure(&distributed));
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
