//! Crash-at-any-point recovery (the PR 10 robustness core).
//!
//! One deterministic evolving-graph pipeline — churned R-MAT stream,
//! dynamic EBV partitioner, incremental `apply_mutations` epochs,
//! warm-carried CC labels and SSSP distances published to the query plane
//! — runs twice over the same durable state directory:
//!
//! 1. a **reference** run with a disarmed [`Failpoint`], which completes
//!    and records how many durable units (bytes + renames) the whole run
//!    writes;
//! 2. a **crashed** run armed to fail after `k` units, for `k` sampled
//!    across `[0, total)` — the write-ahead log or a checkpoint is torn at
//!    an arbitrary byte — followed by a recovery run that reopens the
//!    directory, rebuilds the world from the newest valid checkpoint,
//!    replays the WAL suffix, fast-forwards the event stream by the
//!    recovered `events_seen`, and continues to completion.
//!
//! The recovered run must be **bit-identical** to the reference: graph
//! structure (including the routing table), epoch counter, warm CC/SSSP
//! value vectors, partitioner surviving set / metrics / snapshot, and the
//! served query-plane snapshot. Anything less means a crash window exists
//! in which durability silently forks the lineage.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use ebv_algorithms::{
    ConnectedComponents, IncrementalConnectedComponents, IncrementalSssp, SingleSourceShortestPath,
    UNREACHABLE,
};
use ebv_bsp::{BspEngine, DistributedGraph, EpochCommitter, RunOptions};
use ebv_dynamic::{ChurnStream, DynamicError, EventPipeline, EventSource};
use ebv_graph::{Edge, VertexId};
use ebv_obs::NoopRecorder;
use ebv_partition::{EbvPartitioner, PartitionId, PartitionMetrics, PartitionResult};
use ebv_serve::{GraphSnapshot, SeriesData, SnapshotStore};
use ebv_state::{DurableState, Failpoint, SeriesValues, StateError};
use ebv_stream::{EdgeSource, RmatEdgeStream};

const SCALE: u32 = 7; // 128 vertices
const EDGES: usize = 700;
const WORKERS: usize = 4;
const CHURN: f64 = 0.25;
const BATCH: usize = 64; // ~15 applied epochs per run
const SEED: u64 = 20_210_707;
const SOURCE: u64 = 0;
const CHECKPOINT_EVERY: usize = 3;

/// Everything the recovered run must reproduce bit-for-bit.
struct Final {
    graph: DistributedGraph,
    labels: Vec<u64>,
    distances: Vec<u64>,
    surviving: Vec<(Edge, PartitionId)>,
    metrics: PartitionMetrics,
    snapshot: PartitionResult,
    served_epoch: u64,
    served_cc: Vec<u64>,
    served_sssp: Vec<u64>,
    events_total: u64,
}

fn state_err(err: StateError) -> DynamicError {
    DynamicError::Durability(err.into())
}

fn series_u64(values: &SeriesValues) -> Vec<u64> {
    match values {
        SeriesValues::U64(v) => v.clone(),
        other => panic!("expected a u64 series, got {other:?}"),
    }
}

fn served_u64(snapshot: &GraphSnapshot, name: &str) -> Vec<u64> {
    match &snapshot.series(name).expect("series published").data {
        SeriesData::U64 { values, .. } => values.clone(),
        other => panic!("{name} must serve as u64, got {other:?}"),
    }
}

/// Runs the full pipeline over `dir`: recover whatever the directory
/// holds, continue to the end of the event stream, return the final
/// state. With an armed failpoint this returns the injected-crash error
/// at some arbitrary point instead.
fn run_to_completion(dir: &Path, failpoint: Failpoint) -> Result<Final, DynamicError> {
    let engine = BspEngine::sequential();
    let source = VertexId::new(SOURCE);
    let (store, recovered) =
        DurableState::open_with_failpoint(dir, CHECKPOINT_EVERY, failpoint).map_err(state_err)?;

    let stream = RmatEdgeStream::new(SCALE, EDGES).with_seed(SEED);
    let mut partitioner = EbvPartitioner::new()
        .dynamic(stream.stream_config(WORKERS))
        .expect("partitioner config");
    let mut distributed = match recovered.checkpoint.as_ref() {
        Some(checkpoint) => checkpoint.rebuild_graph().map_err(state_err)?,
        None => DistributedGraph::build_streaming(WORKERS, Some(1 << SCALE), Vec::new())
            .expect("empty distribution"),
    };
    if !recovered.is_empty() {
        let (universe, pairs) = recovered.resume_partition_state().map_err(state_err)?;
        partitioner.restore(universe, pairs)?;
    }

    // Warm seeds: the checkpointed series, or (fresh start / WAL-only
    // recovery) the cold values of the empty distribution — exactly what
    // the reference run started from.
    let (mut labels, mut distances) = match recovered.checkpoint.as_ref() {
        Some(checkpoint) => {
            let lookup = |name: &str| {
                checkpoint
                    .series
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| series_u64(v))
                    .unwrap_or_else(|| panic!("checkpoint misses warm series {name:?}"))
            };
            (lookup("cc"), lookup("sssp"))
        }
        None => {
            let labels = engine
                .run(&distributed, &ConnectedComponents::new())
                .expect("cold CC")
                .values;
            let distances = engine
                .run(&distributed, &SingleSourceShortestPath::new(source))
                .expect("cold SSSP")
                .values;
            (labels, distances)
        }
    };

    // Replay the WAL suffix: apply each logged batch and re-run the warm
    // programs, publishing to the query plane like the live loop does.
    let snapshots = SnapshotStore::new();
    for frame in &recovered.frames {
        distributed.apply_mutations(&frame.batch)?;
        let cc_program = IncrementalConnectedComponents::from_batch(&labels, &frame.batch);
        labels = engine
            .run_opts(
                &distributed,
                &cc_program,
                RunOptions::new()
                    .warm_seed(&labels)
                    .publish_to(&snapshots.series_sink::<u64>("cc")),
            )
            .expect("warm CC replay")
            .values;
        let sssp_program =
            IncrementalSssp::from_distributed(source, &distributed, &distances, &frame.batch);
        distances = engine
            .run_opts(
                &distributed,
                &sssp_program,
                RunOptions::new().warm_seed(&distances).publish_to(
                    &snapshots
                        .series_sink::<u64>("sssp")
                        .with_absent(UNREACHABLE),
                ),
            )
            .expect("warm SSSP replay")
            .values;
        snapshots.commit_epoch(&distributed);
    }

    // Fast-forward the deterministic event stream past everything the
    // recovered state already absorbed, then continue durably.
    let mut churn = ChurnStream::new(RmatEdgeStream::new(SCALE, EDGES).with_seed(SEED), CHURN)
        .expect("churn config")
        .with_seed(SEED);
    for _ in 0..recovered.events_seen() {
        churn
            .next_event()
            .expect("recovered position lies within the stream")?;
    }

    let events_start = recovered.events_seen();
    let report = EventPipeline::new(BATCH).run_applied_durable(
        churn,
        &mut partitioner,
        &mut distributed,
        &snapshots,
        &store,
        events_start,
        |dg, batch, _metrics, _stats| {
            let cc_program = IncrementalConnectedComponents::from_batch(&labels, batch);
            labels = engine
                .run_opts(
                    dg,
                    &cc_program,
                    RunOptions::new()
                        .warm_seed(&labels)
                        .publish_to(&snapshots.series_sink::<u64>("cc")),
                )
                .map_err(DynamicError::Bsp)?
                .values;
            let sssp_program = IncrementalSssp::from_distributed(source, dg, &distances, batch);
            distances = engine
                .run_opts(
                    dg,
                    &sssp_program,
                    RunOptions::new().warm_seed(&distances).publish_to(
                        &snapshots
                            .series_sink::<u64>("sssp")
                            .with_absent(UNREACHABLE),
                    ),
                )
                .map_err(DynamicError::Bsp)?
                .values;
            store.stage_series("cc", SeriesValues::U64(labels.clone()));
            store.stage_series("sssp", SeriesValues::U64(distances.clone()));
            Ok(())
        },
        &NoopRecorder,
    )?;

    let served = snapshots.handle().snapshot().expect("an epoch was served");
    Ok(Final {
        served_epoch: served.epoch,
        served_cc: served_u64(&served, "cc"),
        served_sssp: served_u64(&served, "sssp"),
        labels,
        distances,
        surviving: partitioner.surviving().collect(),
        metrics: partitioner.metrics(),
        snapshot: partitioner.snapshot().expect("snapshot"),
        events_total: events_start + (report.total_inserts() + report.total_deletes()) as u64,
        graph: distributed,
    })
}

/// The reference run and the total durable unit count, computed once.
fn reference() -> &'static (Final, u64) {
    static REFERENCE: OnceLock<(Final, u64)> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let dir = fresh_dir("reference");
        let failpoint = Failpoint::disarmed();
        let final_state =
            run_to_completion(&dir, failpoint.clone()).expect("the reference run completes");
        let total = failpoint.units_used();
        assert!(
            final_state.graph.epoch() >= 10,
            "the scenario must churn at least 10 applied epochs, got {}",
            final_state.graph.epoch()
        );
        let _ = std::fs::remove_dir_all(&dir);
        (final_state, total)
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ebv-crash-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Crashes a run after `budget` durable units, recovers from the torn
/// directory, and asserts the completed recovery equals the reference.
fn crash_recover_and_compare(budget: u64) {
    let (reference, total) = reference();
    assert!(budget < *total);
    let dir = fresh_dir("run");

    let crashed = run_to_completion(&dir, Failpoint::crash_after(budget));
    match crashed {
        Err(DynamicError::Durability(err)) => {
            assert!(
                err.to_string().contains("injected crash"),
                "budget {budget}: unexpected durability failure {err}"
            );
        }
        Err(other) => panic!("budget {budget}: wrong error family {other}"),
        Ok(_) => panic!("budget {budget} < total {total} must crash"),
    }

    let recovered = run_to_completion(&dir, Failpoint::disarmed())
        .unwrap_or_else(|err| panic!("budget {budget}: recovery failed: {err}"));

    assert!(
        recovered.graph.same_structure(&reference.graph),
        "budget {budget}: recovered graph structure diverged"
    );
    assert_eq!(
        recovered.graph.epoch(),
        reference.graph.epoch(),
        "budget {budget}: epoch counter diverged"
    );
    assert_eq!(
        recovered.labels, reference.labels,
        "budget {budget}: warm CC labels diverged"
    );
    assert_eq!(
        recovered.distances, reference.distances,
        "budget {budget}: warm SSSP distances diverged"
    );
    assert_eq!(
        recovered.surviving, reference.surviving,
        "budget {budget}: partitioner surviving set diverged"
    );
    assert_eq!(
        recovered.metrics, reference.metrics,
        "budget {budget}: partitioner metrics diverged"
    );
    assert_eq!(
        recovered.snapshot, reference.snapshot,
        "budget {budget}: partitioner snapshot diverged"
    );
    assert_eq!(
        recovered.served_epoch, reference.served_epoch,
        "budget {budget}: served snapshot epoch diverged"
    );
    assert_eq!(
        recovered.served_cc, reference.served_cc,
        "budget {budget}: served CC series diverged"
    );
    assert_eq!(
        recovered.served_sssp, reference.served_sssp,
        "budget {budget}: served SSSP series diverged"
    );
    assert_eq!(
        recovered.events_total, reference.events_total,
        "budget {budget}: cumulative event count diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash after an arbitrary durable unit anywhere in the run; the
    /// recovered run is bit-identical to the never-crashed reference.
    #[test]
    fn recovery_is_bit_identical_at_arbitrary_crash_points(fraction in 0.0f64..1.0) {
        let (_, total) = reference();
        let budget = ((fraction * *total as f64) as u64).min(total - 1);
        crash_recover_and_compare(budget);
    }
}

/// The boundary crash points the uniform sample is unlikely to hit: the
/// very first durable byte (nothing survives; recovery is a full re-run)
/// and the very last unit (everything but the final write survives).
#[test]
fn recovery_is_bit_identical_at_the_boundaries() {
    let (_, total) = reference();
    crash_recover_and_compare(0);
    crash_recover_and_compare(total - 1);
}

/// A crash mid-run whose recovery itself crashes, recovered again: the
/// double-crash lineage still converges to the reference.
#[test]
fn recovery_survives_a_second_crash() {
    let (reference_final, total) = reference();
    let dir = fresh_dir("double");
    // First crash roughly mid-run, second shortly after resume.
    let first = total / 2;
    assert!(matches!(
        run_to_completion(&dir, Failpoint::crash_after(first)),
        Err(DynamicError::Durability(_))
    ));
    let second = (total / 16).max(1);
    assert!(matches!(
        run_to_completion(&dir, Failpoint::crash_after(second)),
        Err(DynamicError::Durability(_))
    ));
    let recovered = run_to_completion(&dir, Failpoint::disarmed()).expect("third run completes");
    assert!(recovered.graph.same_structure(&reference_final.graph));
    assert_eq!(recovered.graph.epoch(), reference_final.graph.epoch());
    assert_eq!(recovered.labels, reference_final.labels);
    assert_eq!(recovered.distances, reference_final.distances);
    assert_eq!(recovered.events_total, reference_final.events_total);
    let _ = std::fs::remove_dir_all(&dir);
}
