//! # ebv-graph — graph substrate for the EBV reproduction
//!
//! This crate provides everything the partitioners
//! ([`ebv-partition`](https://docs.rs/ebv-partition)) and the
//! subgraph-centric BSP engine ([`ebv-bsp`](https://docs.rs/ebv-bsp)) need
//! from a graph library:
//!
//! * immutable [`Graph`] values with both an insertion-ordered edge list
//!   (streaming partitioners care about edge order) and CSR adjacency
//!   (applications care about neighbourhood access),
//! * a [`GraphBuilder`] that remaps sparse identifiers and expands undirected
//!   edges into opposite directed pairs, exactly as Section III-C of the
//!   paper prescribes,
//! * degree distributions ([`DegreeDistribution`]) and power-law exponent
//!   estimation ([`estimate_eta`]) for characterizing graphs as in Table I,
//! * deterministic synthetic [`generators`] that substitute for the
//!   non-redistributable evaluation datasets (LiveJournal, Twitter,
//!   Friendster, USARoad), and
//! * SNAP-compatible edge-list [`io`].
//!
//! ## Quick example
//!
//! ```
//! use ebv_graph::generators::{GraphGenerator, RmatGenerator};
//! use ebv_graph::GraphStats;
//!
//! # fn main() -> Result<(), ebv_graph::GraphError> {
//! let graph = RmatGenerator::new(10, 16).with_seed(42).generate()?;
//! let stats = GraphStats::compute("twitter-like", &graph)?;
//! assert!(stats.is_power_law);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod degree;
mod error;
pub mod generators;
mod graph;
pub mod io;
mod powerlaw;
mod stats;
mod types;

pub use builder::GraphBuilder;
pub use degree::DegreeDistribution;
pub use error::{GraphError, Result};
pub use graph::Graph;
pub use powerlaw::{estimate_eta, estimate_eta_with_dmin, estimate_graph_eta, PowerLawFit};
pub use stats::GraphStats;
pub use types::{Edge, GraphKind, VertexId};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::generators::{
        BarabasiAlbertGenerator, ConfigurationModelGenerator, ErdosRenyiGenerator, GraphGenerator,
        GridGenerator, RmatGenerator,
    };
    pub use crate::{
        DegreeDistribution, Edge, Graph, GraphBuilder, GraphError, GraphKind, GraphStats, VertexId,
    };
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::prelude::*;

    proptest! {
        /// Building a graph from arbitrary edge pairs never panics and the
        /// CSR degrees always sum to the edge count.
        #[test]
        fn csr_degrees_sum_to_edge_count(edges in proptest::collection::vec((0u64..200, 0u64..200), 1..400)) {
            let mut builder = GraphBuilder::directed();
            builder.extend_edges(edges.clone());
            // Graphs where all edges are self loops legitimately fail to build.
            if let Ok(graph) = builder.build() {
                let out_sum: usize = graph.vertices().map(|v| graph.out_degree(v)).sum();
                let in_sum: usize = graph.vertices().map(|v| graph.in_degree(v)).sum();
                prop_assert_eq!(out_sum, graph.num_edges());
                prop_assert_eq!(in_sum, graph.num_edges());
                let nonloop = edges.iter().filter(|(s, d)| s != d).count();
                prop_assert_eq!(graph.num_edges(), nonloop);
            }
        }

        /// Every neighbour returned by the CSR is a valid vertex and appears
        /// in the edge list.
        #[test]
        fn neighbors_are_consistent_with_edges(edges in proptest::collection::vec((0u64..50, 0u64..50), 1..200)) {
            let mut builder = GraphBuilder::directed();
            builder.extend_edges(edges);
            if let Ok(graph) = builder.build() {
                for v in graph.vertices() {
                    for &n in graph.out_neighbors(v) {
                        prop_assert!(graph.contains_vertex(n));
                        prop_assert!(graph.edges().contains(&Edge::new(v, n)));
                    }
                    for &n in graph.in_neighbors(v) {
                        prop_assert!(graph.edges().contains(&Edge::new(n, v)));
                    }
                }
            }
        }

        /// The undirected builder always yields symmetric adjacency.
        #[test]
        fn undirected_graphs_are_symmetric(edges in proptest::collection::vec((0u64..40, 0u64..40), 1..100)) {
            let mut builder = GraphBuilder::undirected();
            builder.extend_edges(edges);
            if let Ok(graph) = builder.build() {
                for v in graph.vertices() {
                    prop_assert_eq!(graph.out_degree(v), graph.in_degree(v));
                    for &n in graph.out_neighbors(v) {
                        prop_assert!(graph.out_neighbors(n).contains(&v));
                    }
                }
            }
        }

        /// Degree distribution totals match the vertex count and mean degree
        /// matches the graph's average degree.
        #[test]
        fn degree_distribution_is_consistent(edges in proptest::collection::vec((0u64..60, 0u64..60), 1..200)) {
            let mut builder = GraphBuilder::directed();
            builder.extend_edges(edges);
            if let Ok(graph) = builder.build() {
                let dist = DegreeDistribution::of(&graph);
                prop_assert_eq!(dist.num_vertices(), graph.num_vertices());
                let total: usize = dist.iter().map(|(d, c)| d * c).sum();
                prop_assert_eq!(total, 2 * graph.num_edges());
                prop_assert!((dist.mean_degree() - graph.average_total_degree()).abs() < 1e-9);
            }
        }

        /// Edge-list round trips through the text format preserve the graph.
        #[test]
        fn io_roundtrip(edges in proptest::collection::vec((0u64..40, 0u64..40), 1..100)) {
            let mut builder = GraphBuilder::directed();
            builder.extend_edges(edges);
            if let Ok(graph) = builder.build() {
                let mut buf = Vec::new();
                crate::io::write_edge_list(&graph, &mut buf).unwrap();
                let reread = crate::io::read_edge_list(buf.as_slice(), crate::io::EdgeListOptions::default()).unwrap();
                prop_assert_eq!(reread.edges(), graph.edges());
            }
        }
    }
}
