//! Reading and writing graphs as whitespace-separated edge lists.
//!
//! The format is compatible with the SNAP dumps the paper uses: one edge per
//! line as `src dst` (or `src\tdst`), with `#`-prefixed comment lines.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::types::GraphKind;
use crate::GraphBuilder;

/// Options controlling how an edge-list file is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeListOptions {
    /// Whether each line is a directed edge or an undirected pair.
    pub kind: GraphKind,
    /// Remap sparse vertex identifiers to a dense range (first-seen order).
    pub remap_ids: bool,
    /// Drop duplicate directed edges.
    pub dedup: bool,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            kind: GraphKind::Directed,
            remap_ids: false,
            dedup: false,
        }
    }
}

/// Parses one line of edge-list text.
///
/// Returns `Ok(None)` for lines that carry no edge — blank lines and `#`- or
/// `%`-prefixed comments — and `Ok(Some((src, dst)))` for well-formed edges
/// (two whitespace-separated integers; extra trailing tokens, such as edge
/// weights in some SNAP dumps, are ignored). This is the single line-format
/// authority shared by [`read_edge_list`] and the chunked text reader in
/// `ebv-stream`.
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] carrying `line_number` and the
/// offending content for malformed lines.
///
/// # Examples
///
/// ```
/// use ebv_graph::io::parse_edge_line;
///
/// assert_eq!(parse_edge_line("3 5", 1).unwrap(), Some((3, 5)));
/// assert_eq!(parse_edge_line("  # comment", 2).unwrap(), None);
/// assert_eq!(parse_edge_line("", 3).unwrap(), None);
/// assert!(parse_edge_line("3 five", 4).is_err());
/// ```
pub fn parse_edge_line(line: &str, line_number: usize) -> Result<Option<(u64, u64)>> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    let parse = |token: Option<&str>| -> Option<u64> { token.and_then(|t| t.parse().ok()) };
    match (parse(parts.next()), parse(parts.next())) {
        (Some(src), Some(dst)) => Ok(Some((src, dst))),
        _ => Err(GraphError::ParseEdge {
            line: line_number,
            content: trimmed.to_string(),
        }),
    }
}

/// Parses a graph from any reader producing edge-list text.
///
/// # Errors
///
/// Returns [`GraphError::ParseEdge`] for malformed lines, [`GraphError::Io`]
/// for underlying I/O failures and [`GraphError::EmptyGraph`] when the input
/// has no edges.
///
/// # Examples
///
/// ```
/// use ebv_graph::io::{read_edge_list, EdgeListOptions};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let text = "# tiny graph\n0 1\n1 2\n";
/// let graph = read_edge_list(text.as_bytes(), EdgeListOptions::default())?;
/// assert_eq!(graph.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: Read>(reader: R, options: EdgeListOptions) -> Result<Graph> {
    let buf = BufReader::new(reader);
    let mut builder = GraphBuilder::new(options.kind);
    builder.remap_ids(options.remap_ids).dedup(options.dedup);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        if let Some((src, dst)) = parse_edge_line(&line, idx + 1)? {
            builder.add_edge_ids(src, dst);
        }
    }
    builder.build()
}

/// Reads a graph from an edge-list file on disk.
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, options: EdgeListOptions) -> Result<Graph> {
    let file = File::open(path)?;
    read_edge_list(file, options)
}

/// Writes a graph's directed edge list to any writer, one `src dst` pair per
/// line, preceded by a comment header with the vertex and edge counts.
///
/// # Errors
///
/// Returns [`GraphError::Io`] when writing fails.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# ebv-graph edge list: {} vertices, {} directed edges ({})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.kind()
    )?;
    for e in graph.edges() {
        writeln!(out, "{} {}", e.src.raw(), e.dst.raw())?;
    }
    out.flush()?;
    Ok(())
}

/// Writes a graph's edge list to a file on disk.
///
/// # Errors
///
/// See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn read_simple_edge_list() {
        let text = "# comment\n% another comment\n0 1\n1\t2\n\n2 0\n";
        let g = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn undirected_option_doubles_edges() {
        let text = "0 1\n1 2\n";
        let opts = EdgeListOptions {
            kind: GraphKind::Undirected,
            ..EdgeListOptions::default()
        };
        let g = read_edge_list(text.as_bytes(), opts).unwrap();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn remap_option_densifies() {
        let text = "100 200\n200 300\n";
        let opts = EdgeListOptions {
            remap_ids: true,
            ..EdgeListOptions::default()
        };
        let g = read_edge_list(text.as_bytes(), opts).unwrap();
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::ParseEdge { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn line_numbers_count_comments_and_blanks() {
        // The malformed line is physically line 5; skipped lines still count.
        let text = "# header\n\n% other comment\n0 1\nbroken line\n";
        let err = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::ParseEdge { line, content } => {
                assert_eq!(line, 5);
                assert_eq!(content, "broken line");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_edge_line_classifies_lines() {
        assert_eq!(parse_edge_line("1 2", 1).unwrap(), Some((1, 2)));
        assert_eq!(parse_edge_line("1\t2\textra 9", 1).unwrap(), Some((1, 2)));
        assert_eq!(parse_edge_line("   ", 1).unwrap(), None);
        assert_eq!(parse_edge_line("# c", 1).unwrap(), None);
        assert_eq!(parse_edge_line("% c", 1).unwrap(), None);
        assert!(parse_edge_line("only_one", 7).is_err());
        assert!(parse_edge_line("1", 7).is_err());
        assert!(parse_edge_line("-1 2", 7).is_err());
    }

    #[test]
    fn roundtrip_through_memory() {
        let original = Graph::from_edges(vec![(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        let mut buffer: Vec<u8> = Vec::new();
        write_edge_list(&original, &mut buffer).unwrap();
        let reread = read_edge_list(buffer.as_slice(), EdgeListOptions::default()).unwrap();
        assert_eq!(reread.num_vertices(), original.num_vertices());
        assert_eq!(reread.num_edges(), original.num_edges());
        assert_eq!(reread.edges(), original.edges());
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("ebv-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.edges");
        let original = Graph::from_edges(vec![(0, 1), (1, 2)]).unwrap();
        write_edge_list_file(&original, &path).unwrap();
        let reread = read_edge_list_file(&path, EdgeListOptions::default()).unwrap();
        assert_eq!(reread.num_edges(), 2);
        assert_eq!(reread.out_neighbors(VertexId::new(0)), &[VertexId::new(1)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = read_edge_list("# nothing\n".as_bytes(), EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::EmptyGraph));
    }
}
