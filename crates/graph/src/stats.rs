//! Whole-graph summary statistics (Table I of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::degree::DegreeDistribution;
use crate::error::Result;
use crate::graph::Graph;
use crate::powerlaw::{estimate_eta, PowerLawFit};
use crate::types::GraphKind;

/// Summary statistics of a graph: the columns of Table I in the paper
/// (type, |V|, |E|, average degree, η) plus a few extras that the analysis
/// sections reference informally (max degree, isolated vertices).
///
/// # Examples
///
/// ```
/// use ebv_graph::{generators::named, GraphStats};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let stats = GraphStats::compute("figure1", &named::figure1_graph())?;
/// assert_eq!(stats.num_vertices, 6);
/// assert_eq!(stats.num_edges, 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Name of the dataset the statistics describe.
    pub name: String,
    /// Whether the graph is directed or undirected.
    pub kind: GraphKind,
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges (undirected inputs count twice).
    pub num_edges: usize,
    /// Number of logical input edges (`num_edges / 2` for undirected graphs).
    pub num_input_edges: usize,
    /// Average total degree `2|E|/|V|`.
    pub average_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Number of vertices with no incident edge.
    pub isolated_vertices: usize,
    /// Fitted power-law exponent η of the degree distribution.
    pub eta: f64,
    /// Whether η indicates a power-law (skewed) graph.
    pub is_power_law: bool,
}

impl GraphStats {
    /// Computes the statistics of `graph`, fitting the power-law exponent
    /// from its total-degree distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when the graph is empty (η cannot be fitted).
    pub fn compute(name: &str, graph: &Graph) -> Result<Self> {
        let dist = DegreeDistribution::of(graph);
        let fit: PowerLawFit = estimate_eta(&dist)?;
        Ok(GraphStats {
            name: name.to_string(),
            kind: graph.kind(),
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            num_input_edges: graph.num_input_edges(),
            average_degree: graph.average_degree(),
            max_degree: graph.max_degree(),
            isolated_vertices: graph.num_isolated_vertices(),
            eta: fit.eta,
            is_power_law: fit.is_power_law(),
        })
    }

    /// Renders the statistics as a single row matching the column layout of
    /// Table I: `name, type, |V|, |E|, average degree, eta`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<16} {:<10} {:>12} {:>14} {:>10.2} {:>8.2}",
            self.name,
            self.kind.to_string(),
            self.num_vertices,
            self.num_input_edges,
            self.average_degree,
            self.eta
        )
    }

    /// Header matching [`GraphStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:<10} {:>12} {:>14} {:>10} {:>8}",
            "Graph", "Type", "V", "E", "AvgDeg", "eta"
        )
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} vertices, {} edges, avg degree {:.2}, eta {:.2} ({})",
            self.name,
            self.num_vertices,
            self.num_edges,
            self.average_degree,
            self.eta,
            if self.is_power_law {
                "power-law"
            } else {
                "non-power-law"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GraphGenerator, GridGenerator, RmatGenerator};

    #[test]
    fn stats_of_rmat_graph_are_power_law() {
        let g = RmatGenerator::new(10, 16).with_seed(1).generate().unwrap();
        let stats = GraphStats::compute("rmat", &g).unwrap();
        assert_eq!(stats.num_vertices, 1024);
        assert!(stats.is_power_law);
        assert!(stats.max_degree > 100);
        assert!(stats.average_degree > 0.0);
    }

    #[test]
    fn stats_of_grid_graph_are_not_power_law() {
        let g = GridGenerator::new(40, 40).generate().unwrap();
        let stats = GraphStats::compute("grid", &g).unwrap();
        assert!(!stats.is_power_law);
        assert!(stats.average_degree < 5.0);
        assert_eq!(stats.isolated_vertices, 0);
    }

    #[test]
    fn table_row_and_header_align() {
        let g = GridGenerator::new(5, 5).generate().unwrap();
        let stats = GraphStats::compute("tiny-grid", &g).unwrap();
        let header = GraphStats::table_header();
        let row = stats.table_row();
        assert!(header.contains("AvgDeg"));
        assert!(row.contains("tiny-grid"));
    }

    #[test]
    fn display_is_informative() {
        let g = GridGenerator::new(5, 5).generate().unwrap();
        let stats = GraphStats::compute("tiny", &g).unwrap();
        let s = stats.to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("vertices"));
    }

    #[test]
    fn undirected_input_edges_halved() {
        let g = GridGenerator::new(4, 4).generate().unwrap();
        let stats = GraphStats::compute("grid", &g).unwrap();
        assert_eq!(stats.num_input_edges * 2, stats.num_edges);
    }
}
