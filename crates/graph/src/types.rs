//! Core identifier and edge types shared by every crate in the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex inside a [`Graph`](crate::Graph).
///
/// Vertex identifiers are dense: a graph with `n` vertices uses the
/// identifiers `0..n`. External (sparse) identifiers are remapped by
/// [`GraphBuilder`](crate::GraphBuilder) when the graph is constructed.
///
/// # Examples
///
/// ```
/// use ebv_graph::VertexId;
///
/// let v = VertexId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VertexId(u64);

impl VertexId {
    /// Creates a vertex identifier from its dense index.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VertexId(raw)
    }

    /// Returns the raw 64-bit value of this identifier.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier as a `usize` suitable for indexing
    /// per-vertex arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(raw: u64) -> Self {
        VertexId(raw)
    }
}

impl From<u32> for VertexId {
    fn from(raw: u32) -> Self {
        VertexId(u64::from(raw))
    }
}

impl From<usize> for VertexId {
    fn from(raw: usize) -> Self {
        VertexId(raw as u64)
    }
}

impl From<VertexId> for u64 {
    fn from(id: VertexId) -> Self {
        id.0
    }
}

impl From<VertexId> for usize {
    fn from(id: VertexId) -> Self {
        id.index()
    }
}

/// A directed edge `(src, dst)`.
///
/// Undirected input graphs are represented, as in the paper, by two directed
/// edges with opposite directions (see
/// [`GraphBuilder::undirected`](crate::GraphBuilder::undirected)).
///
/// # Examples
///
/// ```
/// use ebv_graph::{Edge, VertexId};
///
/// let e = Edge::new(VertexId::new(0), VertexId::new(1));
/// assert_eq!(e.reversed(), Edge::new(VertexId::new(1), VertexId::new(0)));
/// assert!(!e.is_self_loop());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Target vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Creates a new directed edge from `src` to `dst`.
    #[inline]
    pub const fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// Returns the edge with its direction flipped.
    #[inline]
    pub const fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Returns `true` when both endpoints are the same vertex.
    #[inline]
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }

    /// Returns both endpoints as a pair `(src, dst)`.
    #[inline]
    pub const fn endpoints(self) -> (VertexId, VertexId) {
        (self.src, self.dst)
    }

    /// Returns the endpoints ordered by identifier, which gives a canonical
    /// representation for treating the edge as undirected.
    #[inline]
    pub fn canonical(self) -> (VertexId, VertexId) {
        if self.src <= self.dst {
            (self.src, self.dst)
        } else {
            (self.dst, self.src)
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

impl From<(u64, u64)> for Edge {
    fn from((src, dst): (u64, u64)) -> Self {
        Edge::new(VertexId::new(src), VertexId::new(dst))
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge::new(src, dst)
    }
}

/// Whether a graph's edge list should be interpreted as directed or
/// undirected.
///
/// The subgraph-centric framework in the paper operates on directed graphs;
/// undirected graphs are expanded into two opposite directed edges before
/// partitioning ([Section III-C of the paper]).
///
/// [Section III-C of the paper]: https://arxiv.org/abs/2010.09007
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphKind {
    /// Each input edge is a single directed edge.
    Directed,
    /// Each input edge stands for a pair of opposite directed edges.
    Undirected,
}

impl GraphKind {
    /// Returns `true` for [`GraphKind::Undirected`].
    pub fn is_undirected(self) -> bool {
        matches!(self, GraphKind::Undirected)
    }
}

impl fmt::Display for GraphKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphKind::Directed => write!(f, "directed"),
            GraphKind::Undirected => write!(f, "undirected"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(u64::from(v), 42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(VertexId::from(42u64), v);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(VertexId::from(42usize), v);
    }

    #[test]
    fn vertex_id_ordering_and_display() {
        let a = VertexId::new(1);
        let b = VertexId::new(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "1");
        assert_eq!(VertexId::default(), VertexId::new(0));
    }

    #[test]
    fn edge_reversal_and_self_loop() {
        let e = Edge::from((3u64, 5u64));
        assert_eq!(e.reversed().src, VertexId::new(5));
        assert_eq!(e.reversed().dst, VertexId::new(3));
        assert!(!e.is_self_loop());
        assert!(Edge::from((4u64, 4u64)).is_self_loop());
    }

    #[test]
    fn edge_canonical_orders_endpoints() {
        let e = Edge::from((9u64, 2u64));
        assert_eq!(e.canonical(), (VertexId::new(2), VertexId::new(9)));
        assert_eq!(e.reversed().canonical(), e.canonical());
    }

    #[test]
    fn edge_display_and_endpoints() {
        let e = Edge::from((1u64, 2u64));
        assert_eq!(e.to_string(), "(1 -> 2)");
        assert_eq!(e.endpoints(), (VertexId::new(1), VertexId::new(2)));
    }

    #[test]
    fn graph_kind_display() {
        assert_eq!(GraphKind::Directed.to_string(), "directed");
        assert_eq!(GraphKind::Undirected.to_string(), "undirected");
        assert!(GraphKind::Undirected.is_undirected());
        assert!(!GraphKind::Directed.is_undirected());
    }
}
