//! Degree distributions and histograms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// The empirical total-degree distribution of a graph.
///
/// Collects, for every observed degree `d`, the number of vertices with that
/// degree. The distribution is the basis for the power-law exponent
/// estimation in [`estimate_eta`](crate::estimate_eta) and for the skew statistics reported in
/// Table I of the paper.
///
/// # Examples
///
/// ```
/// use ebv_graph::{DegreeDistribution, GraphBuilder};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let star = GraphBuilder::undirected()
///     .extend_edges((1..=4).map(|i| (0, i)))
///     .build()?;
/// let dist = DegreeDistribution::of(&star);
/// assert_eq!(dist.count_with_degree(8), 1); // the hub (4 in + 4 out)
/// assert_eq!(dist.count_with_degree(2), 4); // the leaves
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeDistribution {
    counts: BTreeMap<usize, usize>,
    num_vertices: usize,
}

impl DegreeDistribution {
    /// Computes the total-degree distribution of `graph`.
    pub fn of(graph: &Graph) -> Self {
        Self::from_degrees(graph.vertices().map(|v| graph.degree(v)))
    }

    /// Builds a distribution from an iterator of per-vertex degrees.
    pub fn from_degrees<I>(degrees: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        let mut num_vertices = 0usize;
        for d in degrees {
            *counts.entry(d).or_insert(0) += 1;
            num_vertices += 1;
        }
        DegreeDistribution {
            counts,
            num_vertices,
        }
    }

    /// Number of vertices the distribution was computed over.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of vertices with exactly degree `d`.
    pub fn count_with_degree(&self, d: usize) -> usize {
        self.counts.get(&d).copied().unwrap_or(0)
    }

    /// Number of vertices with degree at least `d`.
    pub fn count_with_degree_at_least(&self, d: usize) -> usize {
        self.counts.range(d..).map(|(_, &count)| count).sum()
    }

    /// The smallest observed degree, or `None` for an empty distribution.
    pub fn min_degree(&self) -> Option<usize> {
        self.counts.keys().next().copied()
    }

    /// The largest observed degree, or `None` for an empty distribution.
    pub fn max_degree(&self) -> Option<usize> {
        self.counts.keys().next_back().copied()
    }

    /// Mean degree over all vertices (0 for an empty distribution).
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        let total: usize = self.counts.iter().map(|(&d, &c)| d * c).sum();
        total as f64 / self.num_vertices as f64
    }

    /// Iterator over `(degree, vertex count)` pairs in increasing degree
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Empirical probability `P(degree = d)`.
    pub fn probability(&self, d: usize) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        self.count_with_degree(d) as f64 / self.num_vertices as f64
    }

    /// Empirical complementary CDF `P(degree >= d)`.
    pub fn ccdf(&self, d: usize) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        self.count_with_degree_at_least(d) as f64 / self.num_vertices as f64
    }

    /// Fraction of all edge endpoints that are incident on the top
    /// `fraction` highest-degree vertices. A large value for a small
    /// `fraction` (e.g. 0.01) is a hallmark of power-law graphs.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `0.0..=1.0`.
    pub fn endpoint_share_of_top(&self, fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must lie in [0, 1]"
        );
        let total_endpoints: usize = self.counts.iter().map(|(&d, &c)| d * c).sum();
        if total_endpoints == 0 {
            return 0.0;
        }
        let mut top_vertices = ((self.num_vertices as f64) * fraction).ceil() as usize;
        let mut covered = 0usize;
        for (&d, &c) in self.counts.iter().rev() {
            if top_vertices == 0 {
                break;
            }
            let take = top_vertices.min(c);
            covered += take * d;
            top_vertices -= take;
        }
        covered as f64 / total_endpoints as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star(leaves: u64) -> Graph {
        GraphBuilder::undirected()
            .extend_edges((1..=leaves).map(|i| (0, i)))
            .build()
            .unwrap()
    }

    #[test]
    fn star_distribution() {
        let dist = DegreeDistribution::of(&star(5));
        assert_eq!(dist.num_vertices(), 6);
        assert_eq!(dist.count_with_degree(10), 1);
        assert_eq!(dist.count_with_degree(2), 5);
        assert_eq!(dist.min_degree(), Some(2));
        assert_eq!(dist.max_degree(), Some(10));
    }

    #[test]
    fn mean_and_probability() {
        let dist = DegreeDistribution::from_degrees(vec![1, 1, 2, 4]);
        assert!((dist.mean_degree() - 2.0).abs() < 1e-12);
        assert!((dist.probability(1) - 0.5).abs() < 1e-12);
        assert!((dist.probability(3) - 0.0).abs() < 1e-12);
        assert!((dist.ccdf(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn count_at_least_sums_tail() {
        let dist = DegreeDistribution::from_degrees(vec![1, 2, 2, 3, 10]);
        assert_eq!(dist.count_with_degree_at_least(2), 4);
        assert_eq!(dist.count_with_degree_at_least(4), 1);
        assert_eq!(dist.count_with_degree_at_least(11), 0);
    }

    #[test]
    fn empty_distribution_is_well_behaved() {
        let dist = DegreeDistribution::from_degrees(Vec::new());
        assert_eq!(dist.num_vertices(), 0);
        assert_eq!(dist.min_degree(), None);
        assert_eq!(dist.max_degree(), None);
        assert_eq!(dist.mean_degree(), 0.0);
        assert_eq!(dist.probability(1), 0.0);
        assert_eq!(dist.endpoint_share_of_top(0.1), 0.0);
    }

    #[test]
    fn endpoint_share_of_top_detects_hub() {
        let dist = DegreeDistribution::of(&star(50));
        // The single hub (top 2% of 51 vertices) touches half of all
        // endpoints in the star.
        let share = dist.endpoint_share_of_top(0.02);
        assert!(share > 0.45, "share was {share}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn endpoint_share_rejects_bad_fraction() {
        let dist = DegreeDistribution::from_degrees(vec![1, 2]);
        let _ = dist.endpoint_share_of_top(1.5);
    }

    #[test]
    fn iter_is_sorted_by_degree() {
        let dist = DegreeDistribution::from_degrees(vec![5, 1, 3, 3]);
        let degrees: Vec<usize> = dist.iter().map(|(d, _)| d).collect();
        assert_eq!(degrees, vec![1, 3, 5]);
    }
}
