//! Incremental construction of [`Graph`] values.

use std::collections::HashMap;

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::types::{Edge, GraphKind, VertexId};

/// Builder for [`Graph`] values.
///
/// The builder accepts edges with arbitrary (possibly sparse) vertex
/// identifiers, optionally remaps them to a dense `0..n` range, expands
/// undirected edges into two opposite directed edges, and finally produces an
/// immutable [`Graph`] with CSR adjacency.
///
/// # Examples
///
/// ```
/// use ebv_graph::GraphBuilder;
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let graph = GraphBuilder::undirected()
///     .add_edge_ids(0, 1)
///     .add_edge_ids(1, 2)
///     .build()?;
/// assert_eq!(graph.num_vertices(), 3);
/// // Undirected edges are stored as two opposite directed edges.
/// assert_eq!(graph.num_edges(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    kind: GraphKind,
    edges: Vec<(u64, u64)>,
    remap_ids: bool,
    dedup: bool,
    allow_self_loops: bool,
    num_vertices_hint: Option<usize>,
}

impl GraphBuilder {
    /// Creates a builder for a directed graph.
    pub fn directed() -> Self {
        Self::new(GraphKind::Directed)
    }

    /// Creates a builder for an undirected graph: every added edge is stored
    /// as a pair of opposite directed edges, matching the preprocessing used
    /// by the paper.
    pub fn undirected() -> Self {
        Self::new(GraphKind::Undirected)
    }

    /// Creates a builder for the given [`GraphKind`].
    pub fn new(kind: GraphKind) -> Self {
        GraphBuilder {
            kind,
            edges: Vec::new(),
            remap_ids: false,
            dedup: false,
            allow_self_loops: false,
            num_vertices_hint: None,
        }
    }

    /// Remap sparse external identifiers to a dense `0..n` range in first-seen
    /// order. When disabled (the default) the maximum identifier determines
    /// the vertex count.
    pub fn remap_ids(&mut self, remap: bool) -> &mut Self {
        self.remap_ids = remap;
        self
    }

    /// Remove duplicate directed edges before building.
    pub fn dedup(&mut self, dedup: bool) -> &mut Self {
        self.dedup = dedup;
        self
    }

    /// Keep self loops instead of silently dropping them (the default drops
    /// them, as the evaluation graphs in the paper are loop-free).
    pub fn allow_self_loops(&mut self, allow: bool) -> &mut Self {
        self.allow_self_loops = allow;
        self
    }

    /// Declare the number of vertices up front. Useful when isolated vertices
    /// beyond the largest endpoint must be preserved.
    pub fn num_vertices(&mut self, n: usize) -> &mut Self {
        self.num_vertices_hint = Some(n);
        self
    }

    /// Adds a single edge between raw vertex identifiers.
    pub fn add_edge_ids(&mut self, src: u64, dst: u64) -> &mut Self {
        self.edges.push((src, dst));
        self
    }

    /// Adds a single [`Edge`].
    pub fn add_edge(&mut self, edge: Edge) -> &mut Self {
        self.edges.push((edge.src.raw(), edge.dst.raw()));
        self
    }

    /// Adds every edge from an iterator of `(src, dst)` pairs.
    pub fn extend_edges<I>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        self.edges.extend(iter);
        self
    }

    /// Number of raw (pre-expansion) edges currently staged in the builder.
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Consumes the staged edges and produces an immutable [`Graph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] when a declared vertex count
    /// is smaller than the largest endpoint identifier, and
    /// [`GraphError::EmptyGraph`] when no edges were staged and no vertex
    /// count hint was given.
    pub fn build(&self) -> Result<Graph> {
        let mut raw: Vec<(u64, u64)> = Vec::with_capacity(self.edges.len());
        if self.remap_ids {
            let mut mapping: HashMap<u64, u64> = HashMap::new();
            let mut next: u64 = 0;
            for &(s, d) in &self.edges {
                let s = *mapping.entry(s).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                let d = *mapping.entry(d).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                raw.push((s, d));
            }
        } else {
            raw.extend_from_slice(&self.edges);
        }

        if !self.allow_self_loops {
            raw.retain(|&(s, d)| s != d);
        }

        let mut directed: Vec<Edge> = Vec::with_capacity(match self.kind {
            GraphKind::Directed => raw.len(),
            GraphKind::Undirected => raw.len() * 2,
        });
        for &(s, d) in &raw {
            let e = Edge::new(VertexId::new(s), VertexId::new(d));
            directed.push(e);
            if self.kind.is_undirected() {
                directed.push(e.reversed());
            }
        }

        if self.dedup {
            directed.sort_unstable();
            directed.dedup();
        }

        let max_endpoint = directed.iter().map(|e| e.src.raw().max(e.dst.raw())).max();

        let implied_vertices = max_endpoint.map(|m| m as usize + 1).unwrap_or(0);
        let num_vertices = match self.num_vertices_hint {
            Some(hint) => {
                if hint < implied_vertices {
                    return Err(GraphError::InvalidParameter {
                        parameter: "num_vertices",
                        message: format!(
                            "declared {hint} vertices but edges reference vertex {}",
                            implied_vertices - 1
                        ),
                    });
                }
                hint
            }
            None => implied_vertices,
        };

        if num_vertices == 0 {
            return Err(GraphError::EmptyGraph);
        }

        Ok(Graph::from_parts(self.kind, num_vertices, directed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_build_counts_vertices_from_max_id() {
        let g = GraphBuilder::directed()
            .add_edge_ids(0, 5)
            .add_edge_ids(5, 2)
            .build()
            .unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.kind(), GraphKind::Directed);
    }

    #[test]
    fn undirected_build_doubles_edges() {
        let g = GraphBuilder::undirected()
            .add_edge_ids(0, 1)
            .add_edge_ids(1, 2)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(VertexId::new(1)), 2);
        assert_eq!(g.in_degree(VertexId::new(1)), 2);
    }

    #[test]
    fn self_loops_dropped_by_default_and_kept_on_request() {
        let dropped = GraphBuilder::directed()
            .add_edge_ids(0, 0)
            .add_edge_ids(0, 1)
            .build()
            .unwrap();
        assert_eq!(dropped.num_edges(), 1);

        let kept = GraphBuilder::directed()
            .allow_self_loops(true)
            .add_edge_ids(0, 0)
            .add_edge_ids(0, 1)
            .build()
            .unwrap();
        assert_eq!(kept.num_edges(), 2);
    }

    #[test]
    fn remap_ids_densifies_sparse_identifiers() {
        let g = GraphBuilder::directed()
            .remap_ids(true)
            .add_edge_ids(1_000_000, 2_000_000)
            .add_edge_ids(2_000_000, 3_000_000)
            .build()
            .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dedup_removes_duplicate_edges() {
        let g = GraphBuilder::directed()
            .dedup(true)
            .add_edge_ids(0, 1)
            .add_edge_ids(0, 1)
            .add_edge_ids(1, 0)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_builder_errors() {
        let err = GraphBuilder::directed().build().unwrap_err();
        assert!(matches!(err, GraphError::EmptyGraph));
    }

    #[test]
    fn vertex_hint_preserves_isolated_vertices() {
        let g = GraphBuilder::directed()
            .num_vertices(10)
            .add_edge_ids(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn vertex_hint_too_small_is_rejected() {
        let err = GraphBuilder::directed()
            .num_vertices(2)
            .add_edge_ids(0, 5)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn extend_edges_and_staged_count() {
        let mut b = GraphBuilder::directed();
        b.extend_edges(vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.staged_edges(), 3);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 3);
    }
}
