//! Barabási–Albert preferential-attachment generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{GraphError, Result};
use crate::generators::GraphGenerator;
use crate::graph::Graph;
use crate::GraphBuilder;

/// Generator for Barabási–Albert preferential-attachment graphs.
///
/// Vertices arrive one at a time and attach `edges_per_vertex` undirected
/// edges to existing vertices with probability proportional to their current
/// degree. The resulting degree distribution follows a power law with
/// exponent ≈ 3, a good stand-in for moderately skewed social graphs such as
/// LiveJournal.
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::{BarabasiAlbertGenerator, GraphGenerator};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let graph = BarabasiAlbertGenerator::new(1_000, 4).with_seed(7).generate()?;
/// assert_eq!(graph.num_vertices(), 1_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarabasiAlbertGenerator {
    num_vertices: usize,
    edges_per_vertex: usize,
    seed: u64,
}

impl BarabasiAlbertGenerator {
    /// Creates a generator for `num_vertices` vertices where each new vertex
    /// attaches `edges_per_vertex` edges.
    pub fn new(num_vertices: usize, edges_per_vertex: usize) -> Self {
        BarabasiAlbertGenerator {
            num_vertices,
            edges_per_vertex,
            seed: 0,
        }
    }

    /// Sets the random seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.num_vertices < 2 {
            return Err(GraphError::InvalidParameter {
                parameter: "num_vertices",
                message: "preferential attachment needs at least 2 vertices".to_string(),
            });
        }
        if self.edges_per_vertex == 0 || self.edges_per_vertex >= self.num_vertices {
            return Err(GraphError::InvalidParameter {
                parameter: "edges_per_vertex",
                message: format!(
                    "edges per vertex must be in 1..{} (got {})",
                    self.num_vertices, self.edges_per_vertex
                ),
            });
        }
        Ok(())
    }
}

impl GraphGenerator for BarabasiAlbertGenerator {
    fn generate(&self) -> Result<Graph> {
        self.validate()?;
        let m = self.edges_per_vertex;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // `targets` holds one entry per edge endpoint, so sampling a uniform
        // index implements preferential attachment ("repeated nodes" trick).
        let mut endpoint_pool: Vec<u64> = Vec::with_capacity(2 * m * self.num_vertices);
        let mut edges: Vec<(u64, u64)> = Vec::with_capacity(m * self.num_vertices);

        // Seed clique over the first m+1 vertices so every early vertex has
        // degree at least m.
        for i in 0..=(m as u64) {
            for j in (i + 1)..=(m as u64) {
                edges.push((i, j));
                endpoint_pool.push(i);
                endpoint_pool.push(j);
            }
        }

        for v in (m as u64 + 1)..(self.num_vertices as u64) {
            let mut chosen: Vec<u64> = Vec::with_capacity(m);
            while chosen.len() < m {
                let target = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
                if target != v && !chosen.contains(&target) {
                    chosen.push(target);
                }
            }
            for &t in &chosen {
                edges.push((v, t));
                endpoint_pool.push(v);
                endpoint_pool.push(t);
            }
        }

        let mut builder = GraphBuilder::undirected();
        builder.num_vertices(self.num_vertices).extend_edges(edges);
        builder.build()
    }

    fn describe(&self) -> String {
        format!(
            "Barabasi-Albert(n={}, m={}, seed={})",
            self.num_vertices, self.edges_per_vertex, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::estimate_graph_eta;
    use crate::VertexId;

    #[test]
    fn produces_requested_vertex_count_and_min_degree() {
        let g = BarabasiAlbertGenerator::new(500, 3)
            .with_seed(11)
            .generate()
            .unwrap();
        assert_eq!(g.num_vertices(), 500);
        // Every vertex attaches at least 3 undirected edges => total degree >= 6.
        for v in g.vertices() {
            assert!(g.degree(v) >= 6, "vertex {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = BarabasiAlbertGenerator::new(3_000, 4)
            .with_seed(3)
            .generate()
            .unwrap();
        let fit = estimate_graph_eta(&g).unwrap();
        assert!(fit.is_power_law(), "eta = {}", fit.eta);
        assert!(g.max_degree() > 20 * 2 * 4);
    }

    #[test]
    fn early_vertices_become_hubs() {
        let g = BarabasiAlbertGenerator::new(2_000, 2)
            .with_seed(5)
            .generate()
            .unwrap();
        let early_avg: f64 = (0..10)
            .map(|i| g.degree(VertexId::new(i)) as f64)
            .sum::<f64>()
            / 10.0;
        let late_avg: f64 = (1990..2000)
            .map(|i| g.degree(VertexId::new(i)) as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            early_avg > 3.0 * late_avg,
            "early {early_avg} vs late {late_avg}"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(BarabasiAlbertGenerator::new(1, 1).generate().is_err());
        assert!(BarabasiAlbertGenerator::new(10, 0).generate().is_err());
        assert!(BarabasiAlbertGenerator::new(10, 10).generate().is_err());
    }

    #[test]
    fn describe_mentions_parameters() {
        let d = BarabasiAlbertGenerator::new(10, 2).with_seed(4).describe();
        assert!(d.contains("n=10"));
        assert!(d.contains("seed=4"));
    }
}
