//! Small hand-written graphs used in tests, documentation and the Figure 1
//! walkthrough of the paper.

use crate::error::Result;
use crate::graph::Graph;
use crate::GraphBuilder;

/// The six-vertex undirected example graph from Figure 1 of the paper.
///
/// Vertices are labelled `A..F` as `0..5`. The raw graph is
/// `A-B, A-C, B-C, A-D, D-E, A-F`, an uneven degree distribution with `A` as
/// the hub. Partitioning it into two subgraphs with EBV illustrates why the
/// degree-sum edge ordering produces a more balanced result than alphabetical
/// order.
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::named;
///
/// let g = named::figure1_graph();
/// assert_eq!(g.num_vertices(), 6);
/// assert_eq!(g.num_input_edges(), 6);
/// ```
pub fn figure1_graph() -> Graph {
    GraphBuilder::undirected()
        .extend_edges(vec![
            (FIG1_A, FIG1_B),
            (FIG1_A, FIG1_C),
            (FIG1_B, FIG1_C),
            (FIG1_A, FIG1_D),
            (FIG1_D, FIG1_E),
            (FIG1_A, FIG1_F),
        ])
        .build()
        .expect("figure 1 graph is statically valid")
}

/// Vertex `A` of [`figure1_graph`].
pub const FIG1_A: u64 = 0;
/// Vertex `B` of [`figure1_graph`].
pub const FIG1_B: u64 = 1;
/// Vertex `C` of [`figure1_graph`].
pub const FIG1_C: u64 = 2;
/// Vertex `D` of [`figure1_graph`].
pub const FIG1_D: u64 = 3;
/// Vertex `E` of [`figure1_graph`].
pub const FIG1_E: u64 = 4;
/// Vertex `F` of [`figure1_graph`].
pub const FIG1_F: u64 = 5;

/// A directed path `0 -> 1 -> … -> n-1`.
///
/// # Errors
///
/// Returns an error when `n < 2`.
pub fn path_graph(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(crate::GraphError::InvalidParameter {
            parameter: "n",
            message: format!("a path needs at least 2 vertices, got {n}"),
        });
    }
    GraphBuilder::directed()
        .extend_edges((0..n as u64 - 1).map(|i| (i, i + 1)))
        .num_vertices(n)
        .build()
}

/// An undirected cycle over `n` vertices.
///
/// # Errors
///
/// Returns an error when `n < 3`.
pub fn cycle_graph(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(crate::GraphError::InvalidParameter {
            parameter: "n",
            message: format!("a cycle needs at least 3 vertices, got {n}"),
        });
    }
    GraphBuilder::undirected()
        .extend_edges((0..n as u64).map(|i| (i, (i + 1) % n as u64)))
        .build()
}

/// An undirected star: vertex 0 connected to `leaves` leaf vertices.
///
/// # Errors
///
/// Returns an error when `leaves == 0`.
pub fn star_graph(leaves: usize) -> Result<Graph> {
    GraphBuilder::undirected()
        .extend_edges((1..=leaves as u64).map(|i| (0, i)))
        .build()
}

/// A complete undirected graph over `n` vertices.
///
/// # Errors
///
/// Returns an error when `n < 2`.
pub fn complete_graph(n: usize) -> Result<Graph> {
    let mut builder = GraphBuilder::undirected();
    for i in 0..n as u64 {
        for j in (i + 1)..n as u64 {
            builder.add_edge_ids(i, j);
        }
    }
    builder.build()
}

/// Two disjoint undirected triangles (`0,1,2` and `3,4,5`), useful for
/// connected-components tests.
pub fn two_triangles() -> Graph {
    GraphBuilder::undirected()
        .extend_edges(vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        .build()
        .expect("two triangles is statically valid")
}

/// A small weighted-free "social network" of 34 vertices shaped like the
/// classic karate-club graph: two hubs with overlapping communities. The
/// exact edge set is a fixed, hand-checked list (not the Zachary data), small
/// enough for exhaustive assertions in tests.
pub fn small_social_graph() -> Graph {
    let hub_a: u64 = 0;
    let hub_b: u64 = 33;
    let mut edges: Vec<(u64, u64)> = Vec::new();
    // Hub A connects to vertices 1..=16, hub B to 17..=32.
    for v in 1..=16u64 {
        edges.push((hub_a, v));
    }
    for v in 17..=32u64 {
        edges.push((hub_b, v));
    }
    // A ring through the periphery ties the two communities together.
    for v in 1..32u64 {
        edges.push((v, v + 1));
    }
    edges.push((hub_a, hub_b));
    GraphBuilder::undirected()
        .extend_edges(edges)
        .build()
        .expect("small social graph is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn figure1_graph_matches_paper() {
        let g = figure1_graph();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 12);
        // A is the hub with undirected degree 4 (total degree 8).
        assert_eq!(g.degree(VertexId::new(FIG1_A)), 8);
        assert_eq!(g.degree(VertexId::new(FIG1_E)), 2);
        assert_eq!(g.degree(VertexId::new(FIG1_F)), 2);
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph(5).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(VertexId::new(0)), 1);
        assert_eq!(g.out_degree(VertexId::new(4)), 0);
        assert!(path_graph(1).is_err());
    }

    #[test]
    fn cycle_graph_every_vertex_degree_four() {
        let g = cycle_graph(6).unwrap();
        assert_eq!(g.num_vertices(), 6);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn star_graph_hub_degree() {
        let g = star_graph(7).unwrap();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.degree(VertexId::new(0)), 14);
        assert!(star_graph(0).is_err());
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(5).unwrap();
        assert_eq!(g.num_edges(), 5 * 4);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 8);
        }
    }

    #[test]
    fn two_triangles_are_disjoint() {
        let g = two_triangles();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 12);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn small_social_graph_has_two_hubs() {
        let g = small_social_graph();
        assert_eq!(g.num_vertices(), 34);
        let d0 = g.degree(VertexId::new(0));
        let d33 = g.degree(VertexId::new(33));
        let dmid = g.degree(VertexId::new(10));
        assert!(d0 > 3 * dmid);
        assert!(d33 > 3 * dmid);
    }
}
