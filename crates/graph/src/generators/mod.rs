//! Synthetic graph generators.
//!
//! The paper evaluates on four SNAP/DIMACS graphs (LiveJournal, Twitter,
//! Friendster, USARoad) that are not redistributable inside this repository.
//! The generators in this module produce deterministic synthetic substitutes
//! with the property that actually matters to the evaluation — the degree
//! distribution skew (the power-law exponent η) — while staying small enough
//! to run on a laptop:
//!
//! * [`RmatGenerator`] — recursive-matrix graphs with tunable skew, the
//!   standard stand-in for social networks (Twitter/Friendster substitutes).
//! * [`BarabasiAlbertGenerator`] — preferential attachment, η ≈ 3 tail
//!   (LiveJournal-like substitutes).
//! * [`ConfigurationModelGenerator`] — exact power-law degree sequences with
//!   a chosen η.
//! * [`GridGenerator`] — 2-D lattice with random diagonals; uniform low
//!   degree, the USARoad substitute.
//! * [`ErdosRenyiGenerator`] — uniform random graphs, a non-power-law
//!   control.
//! * [`named`] — tiny hand-written graphs used in unit tests and in the
//!   Figure 1 walkthrough.

mod barabasi_albert;
mod configuration;
mod erdos_renyi;
mod grid;
pub mod named;
mod rmat;

pub use barabasi_albert::BarabasiAlbertGenerator;
pub use configuration::ConfigurationModelGenerator;
pub use erdos_renyi::ErdosRenyiGenerator;
pub use grid::GridGenerator;
pub use rmat::RmatGenerator;

use crate::error::Result;
use crate::graph::Graph;

/// Common interface implemented by every synthetic graph generator.
///
/// Generators are fully deterministic: the same configuration (including its
/// seed) always produces the same graph, so experiments are reproducible
/// run-to-run and machine-to-machine.
pub trait GraphGenerator {
    /// Produces the graph described by this generator configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::InvalidParameter`] when the configuration
    /// is inconsistent (e.g. zero vertices or more edges than a simple graph
    /// can hold).
    fn generate(&self) -> Result<Graph>;

    /// A short human-readable description used in experiment reports.
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphKind;

    /// Every generator must be deterministic for a fixed seed.
    #[test]
    fn generators_are_deterministic() {
        let cases: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(RmatGenerator::new(8, 8).with_seed(3)),
            Box::new(BarabasiAlbertGenerator::new(300, 3).with_seed(3)),
            Box::new(ErdosRenyiGenerator::new(200, 1000).with_seed(3)),
            Box::new(GridGenerator::new(12, 17).with_seed(3)),
            Box::new(ConfigurationModelGenerator::new(400, 2.2).with_seed(3)),
        ];
        for gen in cases {
            let a = gen.generate().unwrap();
            let b = gen.generate().unwrap();
            assert_eq!(a.num_vertices(), b.num_vertices(), "{}", gen.describe());
            assert_eq!(a.num_edges(), b.num_edges(), "{}", gen.describe());
            assert_eq!(a.edges(), b.edges(), "{}", gen.describe());
        }
    }

    #[test]
    fn generators_produce_expected_kind() {
        assert_eq!(
            RmatGenerator::new(6, 4).generate().unwrap().kind(),
            GraphKind::Directed
        );
        assert_eq!(
            GridGenerator::new(5, 5).generate().unwrap().kind(),
            GraphKind::Undirected
        );
        assert_eq!(
            BarabasiAlbertGenerator::new(50, 2)
                .generate()
                .unwrap()
                .kind(),
            GraphKind::Undirected
        );
    }
}
