//! 2-D lattice ("road network") generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{GraphError, Result};
use crate::generators::GraphGenerator;
use crate::graph::Graph;
use crate::GraphBuilder;

/// Generator for road-network-like graphs: a `rows × cols` 2-D lattice with
/// optional random diagonal shortcuts and random edge deletions.
///
/// Road networks such as USARoad have an almost uniform, very low degree
/// (average ≈ 2.4 in Table I of the paper) and large diameter. A sparse grid
/// with a small deletion probability reproduces both properties and serves as
/// the paper's non-power-law control graph.
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::{GraphGenerator, GridGenerator};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let graph = GridGenerator::new(20, 30).generate()?;
/// assert_eq!(graph.num_vertices(), 600);
/// assert!(graph.average_degree() < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridGenerator {
    rows: usize,
    cols: usize,
    diagonal_probability: f64,
    deletion_probability: f64,
    seed: u64,
}

impl GridGenerator {
    /// Creates a generator for a `rows × cols` lattice.
    pub fn new(rows: usize, cols: usize) -> Self {
        GridGenerator {
            rows,
            cols,
            diagonal_probability: 0.0,
            deletion_probability: 0.0,
            seed: 0,
        }
    }

    /// Sets the random seed (default 0). The seed only matters when diagonal
    /// shortcuts or deletions are enabled.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a diagonal shortcut inside each lattice cell with the given
    /// probability, mimicking highway links.
    pub fn with_diagonal_probability(mut self, p: f64) -> Self {
        self.diagonal_probability = p;
        self
    }

    /// Deletes each lattice edge with the given probability, mimicking
    /// irregular road coverage.
    pub fn with_deletion_probability(mut self, p: f64) -> Self {
        self.deletion_probability = p;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.rows < 2 || self.cols < 2 {
            return Err(GraphError::InvalidParameter {
                parameter: "rows/cols",
                message: format!("grid must be at least 2x2, got {}x{}", self.rows, self.cols),
            });
        }
        for (name, p) in [
            ("diagonal_probability", self.diagonal_probability),
            ("deletion_probability", self.deletion_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(GraphError::InvalidParameter {
                    parameter: "probability",
                    message: format!("{name} must lie in [0, 1], got {p}"),
                });
            }
        }
        if self.deletion_probability >= 1.0 {
            return Err(GraphError::InvalidParameter {
                parameter: "deletion_probability",
                message: "deleting every edge leaves an empty graph".to_string(),
            });
        }
        Ok(())
    }

    fn vertex(&self, r: usize, c: usize) -> u64 {
        (r * self.cols + c) as u64
    }
}

impl GraphGenerator for GridGenerator {
    fn generate(&self) -> Result<Graph> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = GraphBuilder::undirected();
        builder.num_vertices(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c + 1 < self.cols && rng.gen::<f64>() >= self.deletion_probability {
                    builder.add_edge_ids(self.vertex(r, c), self.vertex(r, c + 1));
                }
                if r + 1 < self.rows && rng.gen::<f64>() >= self.deletion_probability {
                    builder.add_edge_ids(self.vertex(r, c), self.vertex(r + 1, c));
                }
                if r + 1 < self.rows
                    && c + 1 < self.cols
                    && rng.gen::<f64>() < self.diagonal_probability
                {
                    builder.add_edge_ids(self.vertex(r, c), self.vertex(r + 1, c + 1));
                }
            }
        }
        builder.build()
    }

    fn describe(&self) -> String {
        format!(
            "Grid(rows={}, cols={}, diag={}, del={}, seed={})",
            self.rows, self.cols, self.diagonal_probability, self.deletion_probability, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::estimate_graph_eta;
    use crate::VertexId;

    #[test]
    fn plain_grid_edge_count() {
        // rows*(cols-1) + cols*(rows-1) undirected edges, doubled as directed.
        let g = GridGenerator::new(4, 5).generate().unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 2 * (4 * 4 + 5 * 3));
    }

    #[test]
    fn corner_and_center_degrees() {
        let g = GridGenerator::new(5, 5).generate().unwrap();
        // Corner has 2 undirected neighbours => total degree 4.
        assert_eq!(g.degree(VertexId::new(0)), 4);
        // Center has 4 undirected neighbours => total degree 8.
        assert_eq!(g.degree(VertexId::new(12)), 8);
    }

    #[test]
    fn grid_is_not_power_law() {
        let g = GridGenerator::new(60, 60).generate().unwrap();
        let fit = estimate_graph_eta(&g).unwrap();
        assert!(!fit.is_power_law(), "eta = {}", fit.eta);
        assert!(g.average_degree() < 5.0);
    }

    #[test]
    fn diagonals_add_edges_and_deletions_remove_them() {
        let base = GridGenerator::new(20, 20).generate().unwrap();
        let with_diag = GridGenerator::new(20, 20)
            .with_diagonal_probability(0.5)
            .with_seed(1)
            .generate()
            .unwrap();
        let with_del = GridGenerator::new(20, 20)
            .with_deletion_probability(0.3)
            .with_seed(1)
            .generate()
            .unwrap();
        assert!(with_diag.num_edges() > base.num_edges());
        assert!(with_del.num_edges() < base.num_edges());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(GridGenerator::new(1, 5).generate().is_err());
        assert!(GridGenerator::new(5, 5)
            .with_diagonal_probability(1.5)
            .generate()
            .is_err());
        assert!(GridGenerator::new(5, 5)
            .with_deletion_probability(-0.1)
            .generate()
            .is_err());
    }

    #[test]
    fn describe_mentions_shape() {
        assert!(GridGenerator::new(3, 7).describe().contains("rows=3"));
    }
}
