//! Configuration-model generator with an exact power-law degree sequence.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{GraphError, Result};
use crate::generators::GraphGenerator;
use crate::graph::Graph;
use crate::GraphBuilder;

/// Generator that samples a power-law degree sequence with a chosen exponent
/// η and wires it up with the configuration model (random stub matching).
///
/// Unlike [`RmatGenerator`](crate::generators::RmatGenerator) and
/// [`BarabasiAlbertGenerator`](crate::generators::BarabasiAlbertGenerator),
/// whose exponents are an emergent property, the configuration model lets
/// experiments dial η directly — which is exactly the knob the paper's
/// analysis varies across Table III ("as η decreases, the partition results of
/// NE and METIS are more imbalanced").
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::{ConfigurationModelGenerator, GraphGenerator};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let graph = ConfigurationModelGenerator::new(2_000, 2.1)
///     .with_seed(9)
///     .generate()?;
/// assert_eq!(graph.num_vertices(), 2_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigurationModelGenerator {
    num_vertices: usize,
    eta: f64,
    min_degree: usize,
    max_degree: Option<usize>,
    seed: u64,
}

impl ConfigurationModelGenerator {
    /// Creates a generator for `num_vertices` vertices whose degree sequence
    /// follows `P(d) ∝ d^-eta`.
    pub fn new(num_vertices: usize, eta: f64) -> Self {
        ConfigurationModelGenerator {
            num_vertices,
            eta,
            min_degree: 1,
            max_degree: None,
            seed: 0,
        }
    }

    /// Sets the random seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the minimum degree of the sampled sequence (default 1).
    pub fn with_min_degree(mut self, d: usize) -> Self {
        self.min_degree = d;
        self
    }

    /// Caps the maximum degree of the sampled sequence (default `sqrt(n·min)`
    /// structural cut-off).
    pub fn with_max_degree(mut self, d: usize) -> Self {
        self.max_degree = Some(d);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.num_vertices < 4 {
            return Err(GraphError::InvalidParameter {
                parameter: "num_vertices",
                message: "configuration model needs at least 4 vertices".to_string(),
            });
        }
        if self.eta <= 1.0 {
            return Err(GraphError::InvalidParameter {
                parameter: "eta",
                message: format!("power-law exponent must exceed 1, got {}", self.eta),
            });
        }
        if self.min_degree == 0 {
            return Err(GraphError::InvalidParameter {
                parameter: "min_degree",
                message: "minimum degree must be at least 1".to_string(),
            });
        }
        if let Some(max) = self.max_degree {
            if max < self.min_degree {
                return Err(GraphError::InvalidParameter {
                    parameter: "max_degree",
                    message: format!(
                        "maximum degree {max} is below the minimum degree {}",
                        self.min_degree
                    ),
                });
            }
        }
        Ok(())
    }

    fn sample_degree(&self, rng: &mut StdRng, max_degree: usize) -> usize {
        // Inverse-transform sampling of the (continuous approximation of the)
        // discrete power law, truncated at max_degree.
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let d = (self.min_degree as f64 - 0.5) * u.powf(-1.0 / (self.eta - 1.0)) + 0.5;
        (d.floor() as usize).clamp(self.min_degree, max_degree)
    }
}

impl GraphGenerator for ConfigurationModelGenerator {
    fn generate(&self) -> Result<Graph> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let structural_cutoff =
            ((self.num_vertices * self.min_degree) as f64).sqrt().ceil() as usize;
        let max_degree = self
            .max_degree
            .unwrap_or_else(|| structural_cutoff.max(self.min_degree + 1));

        let mut degrees: Vec<usize> = (0..self.num_vertices)
            .map(|_| self.sample_degree(&mut rng, max_degree))
            .collect();
        // The stub count must be even for a perfect matching.
        if degrees.iter().sum::<usize>() % 2 == 1 {
            degrees[0] += 1;
        }

        let mut stubs: Vec<u64> = Vec::with_capacity(degrees.iter().sum());
        for (v, &d) in degrees.iter().enumerate() {
            stubs.extend(std::iter::repeat_n(v as u64, d));
        }
        stubs.shuffle(&mut rng);

        let mut builder = GraphBuilder::undirected();
        builder.num_vertices(self.num_vertices);
        for pair in stubs.chunks_exact(2) {
            // Self loops are dropped by the builder, so skip them to keep a
            // simple graph; the resulting degree error is negligible.
            if pair[0] != pair[1] {
                builder.add_edge_ids(pair[0], pair[1]);
            }
        }
        builder.build()
    }

    fn describe(&self) -> String {
        format!(
            "ConfigurationModel(n={}, eta={}, d_min={}, seed={})",
            self.num_vertices, self.eta, self.min_degree, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::estimate_graph_eta;

    #[test]
    fn produces_requested_vertices() {
        let g = ConfigurationModelGenerator::new(1_000, 2.3)
            .with_seed(1)
            .generate()
            .unwrap();
        assert_eq!(g.num_vertices(), 1_000);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn lower_eta_gives_more_skew() {
        let skewed = ConfigurationModelGenerator::new(20_000, 1.9)
            .with_min_degree(2)
            .with_seed(3)
            .generate()
            .unwrap();
        let milder = ConfigurationModelGenerator::new(20_000, 3.0)
            .with_min_degree(2)
            .with_seed(3)
            .generate()
            .unwrap();
        // Compare skew through the hub concentration: the lower-eta graph
        // concentrates a much larger share of edge endpoints on its top 1%
        // of vertices. (Direct eta-vs-eta comparisons are unreliable here
        // because the structural cutoff truncates both tails.)
        let skew_share = crate::DegreeDistribution::of(&skewed).endpoint_share_of_top(0.01);
        let mild_share = crate::DegreeDistribution::of(&milder).endpoint_share_of_top(0.01);
        assert!(
            skew_share > mild_share,
            "expected top-1% share {skew_share} > {mild_share}"
        );
        assert!(skewed.max_degree() >= milder.max_degree());
        // Both fits must still be finite and recognisably heavy-tailed.
        assert!(estimate_graph_eta(&skewed).unwrap().eta.is_finite());
        assert!(estimate_graph_eta(&milder).unwrap().eta.is_finite());
    }

    #[test]
    fn respects_min_degree_mostly() {
        let g = ConfigurationModelGenerator::new(2_000, 2.5)
            .with_min_degree(3)
            .with_seed(5)
            .generate()
            .unwrap();
        // Self-loop removal may shave a stub or two off a few vertices, but
        // the overwhelming majority must reach the requested minimum
        // (total degree = 2 * undirected min degree).
        let satisfied = g.vertices().filter(|&v| g.degree(v) >= 2 * 3 - 2).count();
        assert!(satisfied as f64 > 0.95 * g.num_vertices() as f64);
    }

    #[test]
    fn max_degree_cap_is_respected() {
        let g = ConfigurationModelGenerator::new(5_000, 1.8)
            .with_min_degree(2)
            .with_max_degree(40)
            .with_seed(5)
            .generate()
            .unwrap();
        // Total degree counts both directions, so the cap doubles.
        assert!(g.max_degree() <= 2 * 40);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ConfigurationModelGenerator::new(2, 2.0).generate().is_err());
        assert!(ConfigurationModelGenerator::new(100, 0.9)
            .generate()
            .is_err());
        assert!(ConfigurationModelGenerator::new(100, 2.0)
            .with_min_degree(0)
            .generate()
            .is_err());
        assert!(ConfigurationModelGenerator::new(100, 2.0)
            .with_min_degree(5)
            .with_max_degree(2)
            .generate()
            .is_err());
    }

    #[test]
    fn describe_mentions_eta() {
        let d = ConfigurationModelGenerator::new(100, 2.5).describe();
        assert!(d.contains("eta=2.5"));
    }
}
