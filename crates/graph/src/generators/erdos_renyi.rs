//! Erdős–Rényi uniform random graph generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{GraphError, Result};
use crate::generators::GraphGenerator;
use crate::graph::Graph;
use crate::GraphBuilder;

/// Generator for `G(n, m)` Erdős–Rényi graphs: `m` directed edges drawn
/// uniformly at random between `n` vertices.
///
/// The binomial degree distribution of these graphs makes them a useful
/// *non*-power-law control in the partitioner comparisons.
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::{ErdosRenyiGenerator, GraphGenerator};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let graph = ErdosRenyiGenerator::new(100, 500).with_seed(1).generate()?;
/// assert_eq!(graph.num_vertices(), 100);
/// assert_eq!(graph.num_edges(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErdosRenyiGenerator {
    num_vertices: usize,
    num_edges: usize,
    seed: u64,
    undirected: bool,
}

impl ErdosRenyiGenerator {
    /// Creates a generator for `num_vertices` vertices and `num_edges`
    /// uniformly random directed edges.
    pub fn new(num_vertices: usize, num_edges: usize) -> Self {
        ErdosRenyiGenerator {
            num_vertices,
            num_edges,
            seed: 0,
            undirected: false,
        }
    }

    /// Sets the random seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates undirected edge pairs instead of directed edges.
    pub fn undirected(mut self) -> Self {
        self.undirected = true;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.num_vertices < 2 {
            return Err(GraphError::InvalidParameter {
                parameter: "num_vertices",
                message: "need at least 2 vertices".to_string(),
            });
        }
        if self.num_edges == 0 {
            return Err(GraphError::InvalidParameter {
                parameter: "num_edges",
                message: "need at least 1 edge".to_string(),
            });
        }
        Ok(())
    }
}

impl GraphGenerator for ErdosRenyiGenerator {
    fn generate(&self) -> Result<Graph> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_vertices as u64;
        let mut builder = if self.undirected {
            GraphBuilder::undirected()
        } else {
            GraphBuilder::directed()
        };
        builder.num_vertices(self.num_vertices);
        let mut produced = 0;
        while produced < self.num_edges {
            let src = rng.gen_range(0..n);
            let dst = rng.gen_range(0..n);
            if src == dst {
                continue;
            }
            builder.add_edge_ids(src, dst);
            produced += 1;
        }
        builder.build()
    }

    fn describe(&self) -> String {
        format!(
            "Erdos-Renyi(n={}, m={}, seed={}, {})",
            self.num_vertices,
            self.num_edges,
            self.seed,
            if self.undirected {
                "undirected"
            } else {
                "directed"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_counts() {
        let g = ErdosRenyiGenerator::new(50, 200)
            .with_seed(2)
            .generate()
            .unwrap();
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn undirected_variant_doubles_edges() {
        let g = ErdosRenyiGenerator::new(50, 100)
            .undirected()
            .with_seed(2)
            .generate()
            .unwrap();
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = ErdosRenyiGenerator::new(500, 10_000)
            .with_seed(3)
            .generate()
            .unwrap();
        let avg = g.average_total_degree();
        let max = g.max_degree() as f64;
        // Binomial tail: the max degree stays within a small factor of the mean.
        assert!(max < 3.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ErdosRenyiGenerator::new(1, 10).generate().is_err());
        assert!(ErdosRenyiGenerator::new(10, 0).generate().is_err());
    }

    #[test]
    fn describe_mentions_parameters() {
        let d = ErdosRenyiGenerator::new(10, 20).describe();
        assert!(d.contains("n=10"));
        assert!(d.contains("m=20"));
    }
}
