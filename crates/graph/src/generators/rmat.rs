//! R-MAT (recursive matrix) graph generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{GraphError, Result};
use crate::generators::GraphGenerator;
use crate::graph::Graph;
use crate::types::GraphKind;
use crate::GraphBuilder;

/// Generator for R-MAT graphs (Chakrabarti, Zhan & Faloutsos).
///
/// R-MAT recursively subdivides the adjacency matrix into four quadrants with
/// probabilities `(a, b, c, d)`. Skewed probabilities produce the heavy-tailed
/// degree distributions typical of web and social graphs, which makes R-MAT
/// the standard synthetic substitute for graphs such as Twitter and
/// Friendster. The default parameters `(0.57, 0.19, 0.19, 0.05)` are the
/// Graph500 values.
///
/// # Examples
///
/// ```
/// use ebv_graph::generators::{GraphGenerator, RmatGenerator};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let graph = RmatGenerator::new(10, 16).with_seed(42).generate()?;
/// assert_eq!(graph.num_vertices(), 1 << 10);
/// assert_eq!(graph.num_edges(), 16 * (1 << 10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RmatGenerator {
    scale: u32,
    edge_factor: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    kind: GraphKind,
}

impl RmatGenerator {
    /// Creates a generator for a graph with `2^scale` vertices and
    /// `edge_factor * 2^scale` directed edges, using the Graph500 quadrant
    /// probabilities.
    pub fn new(scale: u32, edge_factor: usize) -> Self {
        RmatGenerator {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0,
            kind: GraphKind::Directed,
        }
    }

    /// Sets the random seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the quadrant probabilities `a`, `b`, `c` (`d` is the
    /// remainder). Larger `a` gives a more skewed graph.
    pub fn with_probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Treats generated edges as undirected pairs instead of directed edges.
    pub fn undirected(mut self) -> Self {
        self.kind = GraphKind::Undirected;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.scale == 0 || self.scale > 30 {
            return Err(GraphError::InvalidParameter {
                parameter: "scale",
                message: format!("scale must be in 1..=30, got {}", self.scale),
            });
        }
        if self.edge_factor == 0 {
            return Err(GraphError::InvalidParameter {
                parameter: "edge_factor",
                message: "edge factor must be positive".to_string(),
            });
        }
        let d = 1.0 - self.a - self.b - self.c;
        if self.a <= 0.0 || self.b <= 0.0 || self.c <= 0.0 || d <= 0.0 {
            return Err(GraphError::InvalidParameter {
                parameter: "probabilities",
                message: format!(
                    "quadrant probabilities must be positive and sum below 1 (a={}, b={}, c={}, d={d})",
                    self.a, self.b, self.c
                ),
            });
        }
        Ok(())
    }

    fn sample_edge(&self, rng: &mut StdRng) -> (u64, u64) {
        let n = 1u64 << self.scale;
        let mut src = 0u64;
        let mut dst = 0u64;
        let mut span = n;
        while span > 1 {
            span /= 2;
            let r: f64 = rng.gen();
            // Add a little per-level noise, as recommended by the original
            // R-MAT paper, to avoid exact self-similarity artifacts.
            let noise = 1.0 + 0.1 * (rng.gen::<f64>() - 0.5);
            let a = self.a * noise;
            let b = self.b * noise;
            let c = self.c * noise;
            let total = a + b + c + (1.0 - self.a - self.b - self.c) * noise;
            let (right, down) = if r < a / total {
                (false, false)
            } else if r < (a + b) / total {
                (true, false)
            } else if r < (a + b + c) / total {
                (false, true)
            } else {
                (true, true)
            };
            if right {
                dst += span;
            }
            if down {
                src += span;
            }
        }
        (src, dst)
    }
}

impl GraphGenerator for RmatGenerator {
    fn generate(&self) -> Result<Graph> {
        self.validate()?;
        let num_vertices = 1usize << self.scale;
        let num_edges = num_vertices * self.edge_factor;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = GraphBuilder::new(self.kind);
        builder.num_vertices(num_vertices).allow_self_loops(false);
        let mut produced = 0usize;
        // Self loops are dropped by the builder, so keep sampling until the
        // requested number of non-loop edges has been produced.
        while produced < num_edges {
            let (src, dst) = self.sample_edge(&mut rng);
            if src == dst {
                continue;
            }
            builder.add_edge_ids(src, dst);
            produced += 1;
        }
        builder.build()
    }

    fn describe(&self) -> String {
        format!(
            "R-MAT(scale={}, edge_factor={}, a={}, b={}, c={}, seed={}, {})",
            self.scale, self.edge_factor, self.a, self.b, self.c, self.seed, self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::estimate_graph_eta;

    #[test]
    fn produces_requested_size() {
        let g = RmatGenerator::new(8, 8).with_seed(1).generate().unwrap();
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 2048);
    }

    #[test]
    fn undirected_doubles_directed_edges() {
        let g = RmatGenerator::new(6, 4)
            .undirected()
            .with_seed(1)
            .generate()
            .unwrap();
        assert_eq!(g.num_edges(), 2 * 4 * 64);
    }

    #[test]
    fn default_parameters_are_skewed() {
        let g = RmatGenerator::new(12, 16).with_seed(5).generate().unwrap();
        let fit = estimate_graph_eta(&g).unwrap();
        assert!(
            fit.is_power_law(),
            "R-MAT should be heavy tailed, eta = {}",
            fit.eta
        );
        // The hubs should dominate: top 1% of vertices touch a large share
        // of the endpoints.
        let dist = crate::DegreeDistribution::of(&g);
        assert!(dist.endpoint_share_of_top(0.01) > 0.15);
    }

    #[test]
    fn more_uniform_probabilities_reduce_skew() {
        let skewed = RmatGenerator::new(11, 16).with_seed(5).generate().unwrap();
        let uniform = RmatGenerator::new(11, 16)
            .with_probabilities(0.25, 0.25, 0.25)
            .with_seed(5)
            .generate()
            .unwrap();
        let skewed_max = skewed.max_degree();
        let uniform_max = uniform.max_degree();
        assert!(
            skewed_max > 2 * uniform_max,
            "skewed max degree {skewed_max} should dwarf uniform {uniform_max}"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(RmatGenerator::new(0, 8).generate().is_err());
        assert!(RmatGenerator::new(31, 8).generate().is_err());
        assert!(RmatGenerator::new(8, 0).generate().is_err());
        assert!(RmatGenerator::new(8, 8)
            .with_probabilities(0.9, 0.2, 0.2)
            .generate()
            .is_err());
    }

    #[test]
    fn describe_mentions_parameters() {
        let d = RmatGenerator::new(5, 3).with_seed(9).describe();
        assert!(d.contains("scale=5"));
        assert!(d.contains("seed=9"));
    }
}
