//! Estimation of the power-law degree exponent η.
//!
//! The paper (Section III-A) characterizes its evaluation graphs by the
//! exponent of the degree distribution `P(degree = d) ∝ d^-η`: the lower η,
//! the more skewed the graph. Table I reports η for each graph, and the
//! analysis of Table III orders graphs by η. This module provides the
//! discrete maximum-likelihood estimator of Clauset, Shalizi & Newman, which
//! is the standard way to obtain such exponents from empirical degree data.

use serde::{Deserialize, Serialize};

use crate::degree::DegreeDistribution;
use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Result of a power-law fit over a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Estimated exponent η of `P(degree = d) ∝ d^-η`.
    pub eta: f64,
    /// The minimum degree `d_min` from which the tail was fitted.
    pub d_min: usize,
    /// Number of vertices with degree ≥ `d_min` used by the fit.
    pub tail_vertices: usize,
}

impl PowerLawFit {
    /// Whether the fitted exponent indicates a heavily skewed (power-law)
    /// graph. The paper treats its social graphs (η ≤ ~2.7) as power-law and
    /// the road network (η ≈ 6.3) as non-power-law; we use η < 4 as the
    /// dividing line.
    pub fn is_power_law(&self) -> bool {
        self.eta < 4.0
    }
}

/// Estimates the exponent η using the discrete MLE
/// `η ≈ 1 + n · [Σ ln(d_i / (d_min − 1/2))]^-1` over the degree tail
/// `d_i ≥ d_min`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when the distribution has no vertex of
/// degree ≥ `d_min`, and [`GraphError::InvalidParameter`] when `d_min` is 0.
///
/// # Examples
///
/// ```
/// use ebv_graph::{estimate_eta_with_dmin, DegreeDistribution};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// // A perfectly uniform low-degree distribution has a very large exponent.
/// let road_like = DegreeDistribution::from_degrees(vec![2; 1000]);
/// let fit = estimate_eta_with_dmin(&road_like, 2)?;
/// assert!(fit.eta > 4.0);
/// # Ok(())
/// # }
/// ```
pub fn estimate_eta_with_dmin(dist: &DegreeDistribution, d_min: usize) -> Result<PowerLawFit> {
    if d_min == 0 {
        return Err(GraphError::InvalidParameter {
            parameter: "d_min",
            message: "minimum degree for the power-law fit must be at least 1".to_string(),
        });
    }
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    let shift = d_min as f64 - 0.5;
    for (degree, count) in dist.iter() {
        if degree < d_min {
            continue;
        }
        n += count;
        log_sum += count as f64 * (degree as f64 / shift).ln();
    }
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    // A degenerate tail (all degrees equal to d_min) has log_sum == 0; report
    // a large finite exponent rather than infinity so that downstream tables
    // stay printable.
    let eta = if log_sum <= f64::EPSILON {
        f64::MAX.log10() // ~308, clearly "not a power law"
    } else {
        1.0 + n as f64 / log_sum
    };
    Ok(PowerLawFit {
        eta,
        d_min,
        tail_vertices: n,
    })
}

/// Estimates η by scanning candidate `d_min` values and keeping the fit whose
/// tail still covers at least `min_tail_fraction` of the vertices. Scanning
/// avoids the strong bias that the low-degree head introduces in real and
/// synthetic graphs.
///
/// # Errors
///
/// Propagates errors from [`estimate_eta_with_dmin`]; in particular an empty
/// distribution yields [`GraphError::EmptyGraph`].
pub fn estimate_eta(dist: &DegreeDistribution) -> Result<PowerLawFit> {
    let max_degree = dist.max_degree().ok_or(GraphError::EmptyGraph)?;
    let min_degree = dist.min_degree().unwrap_or(1).max(1);
    let min_tail = (dist.num_vertices() / 100).max(10);

    let mut best: Option<PowerLawFit> = None;
    let mut d_min = min_degree;
    while d_min <= max_degree {
        if dist.count_with_degree_at_least(d_min) < min_tail {
            break;
        }
        let fit = estimate_eta_with_dmin(dist, d_min)?;
        // Prefer the fit with the larger d_min that still covers enough of
        // the tail: this mirrors the usual "pick d_min past the head" advice
        // while staying deterministic and cheap.
        best = Some(fit);
        d_min = (d_min * 2).max(d_min + 1);
    }
    match best {
        Some(fit) => Ok(fit),
        None => estimate_eta_with_dmin(dist, min_degree),
    }
}

/// Convenience wrapper: estimates η directly from a graph's total-degree
/// distribution.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] for graphs without edges.
pub fn estimate_graph_eta(graph: &Graph) -> Result<PowerLawFit> {
    let dist = DegreeDistribution::of(graph);
    estimate_eta(&dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Draws `n` samples from a discrete power law with exponent `eta` using
    /// inverse-transform sampling on the continuous approximation.
    fn sample_power_law(n: usize, eta: f64, d_min: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                let x = (d_min as f64 - 0.5) * u.powf(-1.0 / (eta - 1.0)) + 0.5;
                x.floor() as usize
            })
            .collect()
    }

    #[test]
    fn mle_recovers_known_exponent() {
        for &eta in &[1.9f64, 2.4, 3.0] {
            let degrees = sample_power_law(200_000, eta, 2, 7);
            let dist = DegreeDistribution::from_degrees(degrees);
            let fit = estimate_eta_with_dmin(&dist, 2).unwrap();
            // The continuous-approximation sampler is slightly biased for
            // larger exponents, so allow a quarter-unit tolerance.
            assert!(
                (fit.eta - eta).abs() < 0.25,
                "eta {eta}: estimated {}",
                fit.eta
            );
            assert!(fit.is_power_law());
        }
    }

    #[test]
    fn uniform_degrees_are_not_power_law() {
        let dist = DegreeDistribution::from_degrees(vec![2; 10_000]);
        let fit = estimate_eta(&dist).unwrap();
        assert!(!fit.is_power_law(), "eta was {}", fit.eta);
    }

    #[test]
    fn zero_dmin_is_rejected() {
        let dist = DegreeDistribution::from_degrees(vec![1, 2, 3]);
        assert!(matches!(
            estimate_eta_with_dmin(&dist, 0),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_tail_is_rejected() {
        let dist = DegreeDistribution::from_degrees(vec![1, 2, 3]);
        assert!(matches!(
            estimate_eta_with_dmin(&dist, 100),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn empty_distribution_is_rejected() {
        let dist = DegreeDistribution::from_degrees(Vec::new());
        assert!(matches!(estimate_eta(&dist), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn estimate_eta_handles_small_graphs() {
        let dist = DegreeDistribution::from_degrees(vec![1, 1, 2, 3, 5, 8]);
        let fit = estimate_eta(&dist).unwrap();
        assert!(fit.eta.is_finite());
        assert!(fit.tail_vertices > 0);
    }

    #[test]
    fn graph_eta_wrapper_works() {
        let graph = crate::GraphBuilder::undirected()
            .extend_edges((1..=40u64).map(|i| (0, i)))
            .extend_edges((1..=39u64).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let fit = estimate_graph_eta(&graph).unwrap();
        assert!(fit.eta.is_finite());
    }
}
