//! The immutable [`Graph`] representation used across the workspace.

use serde::{Deserialize, Serialize};

use crate::error::{GraphError, Result};
use crate::types::{Edge, GraphKind, VertexId};

/// An immutable directed graph with both an edge list and CSR adjacency.
///
/// The edge list preserves insertion order, which matters for the streaming
/// partitioners in [`ebv-partition`](https://docs.rs/ebv-partition): the EBV
/// algorithm's result quality depends on the order in which edges are
/// processed (Section IV-C of the paper). The CSR indices give O(1) access to
/// out- and in-neighbourhoods for the BSP applications.
///
/// # Examples
///
/// ```
/// use ebv_graph::{GraphBuilder, VertexId};
///
/// # fn main() -> Result<(), ebv_graph::GraphError> {
/// let g = GraphBuilder::directed()
///     .add_edge_ids(0, 1)
///     .add_edge_ids(0, 2)
///     .add_edge_ids(2, 1)
///     .build()?;
/// assert_eq!(g.out_degree(VertexId::new(0)), 2);
/// assert_eq!(g.in_degree(VertexId::new(1)), 2);
/// assert_eq!(g.degree(VertexId::new(2)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    kind: GraphKind,
    num_vertices: usize,
    edges: Vec<Edge>,
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph from already-expanded directed edges.
    ///
    /// This is the internal constructor used by
    /// [`GraphBuilder`](crate::GraphBuilder); prefer the builder in user code.
    pub(crate) fn from_parts(kind: GraphKind, num_vertices: usize, edges: Vec<Edge>) -> Self {
        let (out_offsets, out_targets) = build_csr(num_vertices, &edges, false);
        let (in_offsets, in_sources) = build_csr(num_vertices, &edges, true);
        Graph {
            kind,
            num_vertices,
            edges,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Convenience constructor for a directed graph given dense edge pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `edges` is empty.
    pub fn from_edges<I>(edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut builder = crate::GraphBuilder::directed();
        builder.extend_edges(edges);
        builder.build()
    }

    /// Whether the graph was built as directed or undirected.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of vertices, including isolated ones.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges (undirected inputs count twice).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of logical input edges: directed edges for directed graphs,
    /// edge pairs for undirected graphs.
    pub fn num_input_edges(&self) -> usize {
        match self.kind {
            GraphKind::Directed => self.edges.len(),
            GraphKind::Undirected => self.edges.len() / 2,
        }
    }

    /// The full edge list in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all vertex identifiers `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices as u64).map(VertexId::new)
    }

    /// Returns `true` when `v` is a valid vertex of this graph.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.num_vertices
    }

    /// Validates that a vertex belongs to the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] when the vertex does not
    /// belong to the graph.
    pub fn check_vertex(&self, v: VertexId) -> Result<()> {
        if self.contains_vertex(v) {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v.raw(),
                num_vertices: self.num_vertices,
            })
        }
    }

    /// Out-neighbours of `v` (targets of edges leaving `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; use [`Graph::check_vertex`] first for
    /// untrusted input.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// In-neighbours of `v` (sources of edges entering `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; use [`Graph::check_vertex`] first for
    /// untrusted input.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.out_offsets[i + 1] - self.out_offsets[i]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.in_offsets[i + 1] - self.in_offsets[i]
    }

    /// Total degree of `v` (in + out), the quantity used by the paper's
    /// edge-sorting preprocessing and by degree-based partitioners.
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Vector of total degrees indexed by vertex.
    pub fn degrees(&self) -> Vec<usize> {
        self.vertices().map(|v| self.degree(v)).collect()
    }

    /// Average degree `|E| / |V|`, the definition used by Table I of the
    /// paper (directed edges divided by vertices).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_vertices as f64
    }

    /// Average total degree `2|E| / |V|`: every directed edge counted at both
    /// of its endpoints. This matches
    /// [`DegreeDistribution::mean_degree`](crate::DegreeDistribution::mean_degree).
    pub fn average_total_degree(&self) -> f64 {
        2.0 * self.average_degree()
    }

    /// The maximum total degree over all vertices, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of vertices with no incident edges.
    pub fn num_isolated_vertices(&self) -> usize {
        self.vertices().filter(|&v| self.degree(v) == 0).count()
    }

    /// Returns a new graph with every edge direction flipped.
    pub fn reversed(&self) -> Graph {
        let edges = self.edges.iter().map(|e| e.reversed()).collect();
        Graph::from_parts(self.kind, self.num_vertices, edges)
    }

    /// Returns the edge list sorted by an arbitrary key, leaving the graph
    /// itself untouched. Used by partitioner preprocessing steps.
    pub fn edges_sorted_by_key<K, F>(&self, mut key: F) -> Vec<Edge>
    where
        K: Ord,
        F: FnMut(&Edge) -> K,
    {
        let mut edges = self.edges.clone();
        edges.sort_by_key(|e| key(e));
        edges
    }
}

/// Builds CSR offsets/targets. When `reverse` is true the CSR indexes
/// in-edges (grouped by destination) instead of out-edges.
fn build_csr(num_vertices: usize, edges: &[Edge], reverse: bool) -> (Vec<usize>, Vec<VertexId>) {
    let mut counts = vec![0usize; num_vertices + 1];
    for e in edges {
        let key = if reverse { e.dst } else { e.src };
        counts[key.index() + 1] += 1;
    }
    for i in 0..num_vertices {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut adjacency = vec![VertexId::default(); edges.len()];
    for e in edges {
        let (key, value) = if reverse {
            (e.dst, e.src)
        } else {
            (e.src, e.dst)
        };
        adjacency[cursor[key.index()]] = value;
        cursor[key.index()] += 1;
    }
    (offsets, adjacency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn csr_out_and_in_neighbors() {
        let g = diamond();
        assert_eq!(
            g.out_neighbors(VertexId::new(0)),
            &[VertexId::new(1), VertexId::new(2)]
        );
        assert_eq!(
            g.in_neighbors(VertexId::new(3)),
            &[VertexId::new(1), VertexId::new(2)]
        );
        assert_eq!(g.out_neighbors(VertexId::new(3)), &[] as &[VertexId]);
        assert_eq!(g.in_neighbors(VertexId::new(0)), &[] as &[VertexId]);
    }

    #[test]
    fn degrees_match_definition() {
        let g = diamond();
        assert_eq!(g.out_degree(VertexId::new(0)), 2);
        assert_eq!(g.in_degree(VertexId::new(0)), 0);
        assert_eq!(g.degree(VertexId::new(0)), 2);
        assert_eq!(g.degree(VertexId::new(3)), 2);
        assert_eq!(g.degrees(), vec![2, 2, 2, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
        assert!((g.average_total_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn num_input_edges_halves_for_undirected() {
        let g = GraphBuilder::undirected()
            .add_edge_ids(0, 1)
            .add_edge_ids(1, 2)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_input_edges(), 2);
    }

    #[test]
    fn contains_and_check_vertex() {
        let g = diamond();
        assert!(g.contains_vertex(VertexId::new(3)));
        assert!(!g.contains_vertex(VertexId::new(4)));
        assert!(g.check_vertex(VertexId::new(3)).is_ok());
        assert!(g.check_vertex(VertexId::new(9)).is_err());
    }

    #[test]
    fn reversed_flips_every_edge() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.out_degree(VertexId::new(3)), 2);
        assert_eq!(r.in_degree(VertexId::new(0)), 2);
    }

    #[test]
    fn vertices_iterator_covers_all_ids() {
        let g = diamond();
        let ids: Vec<u64> = g.vertices().map(|v| v.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = GraphBuilder::directed()
            .num_vertices(6)
            .add_edge_ids(0, 1)
            .build()
            .unwrap();
        assert_eq!(g.num_isolated_vertices(), 4);
    }

    #[test]
    fn edges_sorted_by_key_sorts_without_mutation() {
        let g = diamond();
        let sorted = g.edges_sorted_by_key(|e| std::cmp::Reverse(e.src));
        assert_eq!(sorted[0].src, VertexId::new(2));
        // Original order untouched.
        assert_eq!(g.edges()[0].src, VertexId::new(0));
    }

    #[test]
    fn edge_list_preserves_insertion_order() {
        let g = Graph::from_edges(vec![(3, 1), (0, 2), (2, 1)]).unwrap();
        let srcs: Vec<u64> = g.edges().iter().map(|e| e.src.raw()).collect();
        assert_eq!(srcs, vec![3, 0, 2]);
    }
}
