//! Error type for graph construction, generation and I/O.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Errors produced by the graph substrate.
///
/// Every fallible public function of [`ebv-graph`](crate) returns this type.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex identifier referenced by an edge is outside the declared
    /// vertex range.
    VertexOutOfRange {
        /// The offending vertex identifier.
        vertex: u64,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// The graph has no edges but an operation required at least one.
    EmptyGraph,
    /// A generator or builder was configured with inconsistent parameters.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// A line of an edge-list file could not be parsed.
    ParseEdge {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// An underlying I/O error while reading or writing a graph file.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::InvalidParameter { parameter, message } => {
                write!(f, "invalid parameter `{parameter}`: {message}")
            }
            GraphError::ParseEdge { line, content } => {
                write!(f, "could not parse edge on line {line}: {content:?}")
            }
            GraphError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl StdError for GraphError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(err: io::Error) -> Self {
        GraphError::Io(err)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("out of range"));

        let e = GraphError::InvalidParameter {
            parameter: "num_vertices",
            message: "must be positive".to_string(),
        };
        assert!(e.to_string().contains("num_vertices"));

        let e = GraphError::ParseEdge {
            line: 3,
            content: "a b".to_string(),
        };
        assert!(e.to_string().contains("line 3"));

        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
    }

    #[test]
    fn io_error_is_wrapped_with_source() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e = GraphError::from(io_err);
        assert!(e.to_string().contains("i/o error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
