//! Sequential reference implementations used as ground truth in tests and
//! for validating the distributed programs across every partitioner.

use std::collections::VecDeque;

use ebv_graph::{Graph, VertexId};

/// Sequential connected components via union-find, ignoring edge direction.
/// Returns, for every vertex, the smallest vertex identifier in its
/// component (the same labelling scheme as
/// [`ConnectedComponents`](crate::ConnectedComponents)).
pub fn cc_reference(graph: &Graph) -> Vec<u64> {
    let n = graph.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cursor = x;
        while parent[cursor] != root {
            let next = parent[cursor];
            parent[cursor] = root;
            cursor = next;
        }
        root
    }

    for e in graph.edges() {
        let a = find(&mut parent, e.src.index());
        let b = find(&mut parent, e.dst.index());
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    // Two passes of path compression toward the minimum root give each
    // vertex the smallest identifier of its component.
    let mut labels = vec![0u64; n];
    for (v, label) in labels.iter_mut().enumerate() {
        *label = find(&mut parent, v) as u64;
    }
    labels
}

/// Sequential single-source shortest path with unit edge weights (directed
/// BFS). Unreachable vertices get [`u64::MAX`], matching
/// [`SingleSourceShortestPath`](crate::SingleSourceShortestPath).
pub fn sssp_reference(graph: &Graph, source: VertexId) -> Vec<u64> {
    let n = graph.num_vertices();
    let mut distance = vec![u64::MAX; n];
    if source.index() >= n {
        return distance;
    }
    distance[source.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = distance[v.index()];
        for &u in graph.out_neighbors(v) {
            if distance[u.index()] == u64::MAX {
                distance[u.index()] = d + 1;
                queue.push_back(u);
            }
        }
    }
    distance
}

/// Sequential PageRank by power iteration with the same conventions as the
/// distributed [`PageRank`](crate::PageRank) program: uniform initial ranks,
/// damping factor `damping`, a fixed number of iterations and no dangling
/// mass redistribution.
pub fn pagerank_reference(graph: &Graph, iterations: usize, damping: f64) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut ranks = vec![1.0 / n as f64; n];
    let out_degrees: Vec<u64> = graph
        .vertices()
        .map(|v| graph.out_degree(v) as u64)
        .collect();
    for _ in 0..iterations {
        let mut incoming = vec![0.0f64; n];
        for v in graph.vertices() {
            let out_degree = out_degrees[v.index()];
            if out_degree == 0 {
                continue;
            }
            let contribution = ranks[v.index()] / out_degree as f64;
            for &u in graph.out_neighbors(v) {
                incoming[u.index()] += contribution;
            }
        }
        for v in 0..n {
            ranks[v] = (1.0 - damping) / n as f64 + damping * incoming[v];
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_graph::generators::named;
    use ebv_graph::Graph;

    #[test]
    fn cc_reference_labels_components_by_minimum() {
        let g = named::two_triangles();
        assert_eq!(cc_reference(&g), vec![0, 0, 0, 3, 3, 3]);
        let g = named::small_social_graph();
        let labels = cc_reference(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn sssp_reference_on_a_path_and_disconnected_vertices() {
        let g = named::path_graph(4).unwrap();
        assert_eq!(sssp_reference(&g, VertexId::new(0)), vec![0, 1, 2, 3]);
        // Directed: nothing reaches vertex 0 from vertex 3.
        assert_eq!(
            sssp_reference(&g, VertexId::new(3)),
            vec![u64::MAX, u64::MAX, u64::MAX, 0]
        );
    }

    #[test]
    fn pagerank_reference_sums_close_to_one_without_dangling_vertices() {
        let g = named::cycle_graph(10).unwrap();
        let ranks = pagerank_reference(&g, 30, 0.85);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // Symmetric cycle: every vertex has the same rank.
        for r in &ranks {
            assert!((r - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_reference_prefers_high_in_degree_vertices() {
        let g = Graph::from_edges(vec![(1, 0), (2, 0), (3, 0), (0, 1)]).unwrap();
        let ranks = pagerank_reference(&g, 20, 0.85);
        assert!(ranks[0] > ranks[2]);
        assert!(ranks[0] > ranks[3]);
    }
}
