//! Single-Source Shortest Path in the subgraph-centric model.

use ebv_bsp::{Subgraph, SubgraphContext, SubgraphProgram};
use ebv_graph::VertexId;

/// Distance value used by [`SingleSourceShortestPath`]: unreachable vertices
/// keep [`u64::MAX`].
pub const UNREACHABLE: u64 = u64::MAX;

/// Subgraph-centric Single-Source Shortest Path (SSSP), one of the three
/// evaluation applications of the paper.
///
/// The evaluation graphs are unweighted, so every directed edge has length 1
/// and the result is the directed hop distance from the source. Each
/// superstep folds the distances received from other replicas, runs a
/// sequential Bellman–Ford-style relaxation over the whole subgraph to a
/// local fixpoint, and ships improved boundary distances to the other
/// replicas.
///
/// # Examples
///
/// ```
/// use ebv_algorithms::{SingleSourceShortestPath, UNREACHABLE};
/// use ebv_bsp::{BspEngine, DistributedGraph};
/// use ebv_graph::generators::named;
/// use ebv_graph::VertexId;
/// use ebv_partition::{EbvPartitioner, Partitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = named::path_graph(5)?;
/// let partition = EbvPartitioner::new().partition(&graph, 2)?;
/// let distributed = DistributedGraph::build(&graph, &partition)?;
/// let sssp = SingleSourceShortestPath::new(VertexId::new(0));
/// let outcome = BspEngine::sequential().run(&distributed, &sssp)?;
/// assert_eq!(outcome.values, vec![0, 1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleSourceShortestPath {
    source: VertexId,
}

impl SingleSourceShortestPath {
    /// Creates an SSSP program rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        SingleSourceShortestPath { source }
    }

    /// The source vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }
}

impl SubgraphProgram for SingleSourceShortestPath {
    type Value = u64;
    type Message = u64;

    fn name(&self) -> String {
        "SSSP".to_string()
    }

    fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
        if vertex == self.source {
            0
        } else {
            UNREACHABLE
        }
    }

    fn run_superstep(&self, ctx: &mut SubgraphContext<'_, u64, u64>, _superstep: usize) -> usize {
        let sg = ctx.subgraph();
        let n = sg.num_vertices();
        let mut changed = vec![false; n];

        for (local, was_changed) in changed.iter_mut().enumerate() {
            if let Some(min) = ctx.messages(local).iter().copied().min() {
                if min < *ctx.value(local) {
                    ctx.set_value(local, min);
                    *was_changed = true;
                }
            }
        }

        // Bellman–Ford relaxation over the local CSR adjacency to a
        // fixpoint.
        loop {
            let mut any = false;
            for local in 0..n {
                let distance = *ctx.value(local);
                if distance == UNREACHABLE {
                    continue;
                }
                for &neighbor in sg.out_neighbors(local) {
                    let neighbor = neighbor as usize;
                    ctx.add_work(1);
                    let candidate = distance + 1;
                    if candidate < *ctx.value(neighbor) {
                        ctx.set_value(neighbor, candidate);
                        changed[neighbor] = true;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }

        let mut updates = 0usize;
        for (local, &was_changed) in changed.iter().enumerate() {
            if was_changed {
                updates += 1;
                let distance = *ctx.value(local);
                ctx.send_to_replicas(local, distance);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sssp_reference;
    use ebv_bsp::{BspEngine, DistributedGraph};
    use ebv_graph::generators::{named, GraphGenerator, GridGenerator, RmatGenerator};
    use ebv_graph::Graph;
    use ebv_partition::{paper_partitioners, Partitioner};

    fn run_sssp(graph: &Graph, partitioner: &dyn Partitioner, p: usize, source: u64) -> Vec<u64> {
        let partition = partitioner.partition(graph, p).unwrap();
        let dg = DistributedGraph::build(graph, &partition).unwrap();
        BspEngine::sequential()
            .run(&dg, &SingleSourceShortestPath::new(VertexId::new(source)))
            .unwrap()
            .values
    }

    #[test]
    fn matches_reference_on_small_graphs() {
        for graph in [named::figure1_graph(), named::small_social_graph()] {
            let expected = sssp_reference(&graph, VertexId::new(0));
            for partitioner in paper_partitioners() {
                let got = run_sssp(&graph, partitioner.as_ref(), 3, 0);
                assert_eq!(got, expected, "{}", partitioner.name());
            }
        }
    }

    #[test]
    fn matches_reference_on_power_law_and_grid_graphs() {
        let power_law = RmatGenerator::new(8, 6).with_seed(5).generate().unwrap();
        let grid = GridGenerator::new(12, 12).generate().unwrap();
        for graph in [power_law, grid] {
            let expected = sssp_reference(&graph, VertexId::new(0));
            for partitioner in paper_partitioners() {
                let got = run_sssp(&graph, partitioner.as_ref(), 4, 0);
                assert_eq!(got, expected, "{}", partitioner.name());
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_at_infinity() {
        let graph = named::two_triangles();
        let distances = run_sssp(&graph, &ebv_partition::EbvPartitioner::new(), 2, 0);
        assert_eq!(distances[0], 0);
        assert!(distances[1] <= 2 && distances[2] <= 2);
        assert_eq!(distances[3], UNREACHABLE);
        assert_eq!(distances[4], UNREACHABLE);
    }

    #[test]
    fn source_accessor() {
        let p = SingleSourceShortestPath::new(VertexId::new(7));
        assert_eq!(p.source(), VertexId::new(7));
        assert_eq!(p.name(), "SSSP");
    }
}
