//! Warm-start (incremental) variants of the evaluation applications.
//!
//! A mutation epoch (`ebv_bsp::DistributedGraph::apply_mutations`) usually
//! disturbs a tiny fraction of the graph, yet re-running CC, PageRank, SSSP
//! or BFS from scratch pays the full cold-start cost every time. The
//! programs here are designed for
//! [`BspEngine::run_warm`](ebv_bsp::BspEngine::run_warm): they seed every
//! vertex from the previous epoch's outcome and re-activate only the region
//! the mutations disturbed.
//!
//! All four share one epoch shape, factored into the [`ebv_bsp::warm`]
//! harness ([`WarmFrontier`](ebv_bsp::WarmFrontier) +
//! [`InvalidationPolicy`](ebv_bsp::InvalidationPolicy)) and the gated
//! worklist kernel in this module — a new warm-start algorithm only has to
//! state *what a deletion invalidates* and *what a vertex's cold initial
//! value is*:
//!
//! * [`IncrementalConnectedComponents`] converges to labels **bit-identical**
//!   to a cold [`crate::ConnectedComponents`] run: the final label of every
//!   vertex is the minimum vertex id of its component, a pure function of
//!   the graph, so a correct incremental fixpoint cannot differ. Insertions
//!   re-activate only the inserted endpoints; deletions conservatively reset
//!   the components they touched (a deletion may split a component, and
//!   min-label propagation cannot *raise* stale labels).
//! * [`IncrementalSssp`] and [`IncrementalBfs`] carry hop distances across
//!   epochs with delta-stepping-style re-activation, **bit-identical** to
//!   cold [`crate::SingleSourceShortestPath`] / [`crate::BreadthFirstSearch`]
//!   runs. Inserted-edge endpoints relax downward (an insertion can only
//!   shorten paths); deletions invalidate either everything at or beyond the
//!   deleted edge's head — the graph-free *horizon* of `from_batch` — or,
//!   with `from_distributed`, exactly the *downstream cones* of vertices
//!   whose every tight shortest-path certificate crossed a deleted edge.
//!   The surviving settled frontier re-settles the reset region. Kept
//!   distances are still valid upper bounds, reset ones restart from
//!   unreachable, so the warm relaxation fixpoint is the cold answer.
//! * [`IncrementalPageRank`] continues the power iteration from the previous
//!   epoch's ranks. Rank mass propagates globally, so instead of a frontier
//!   the win is iteration count: a warm start near the fixpoint needs far
//!   fewer iterations than a cold uniform start to reach the same tolerance,
//!   and bit-exact message gating suppresses replica traffic in regions that
//!   have already re-converged.

mod cc;
mod distance;
mod kernel;
mod pagerank;

pub use cc::IncrementalConnectedComponents;
pub use distance::{IncrementalBfs, IncrementalSssp};
pub use pagerank::IncrementalPageRank;
