//! Warm-start Connected Components (see the module-level discussion in
//! [`crate::incremental`] for the full design).

use std::collections::HashSet;

use ebv_bsp::{
    InvalidationPolicy, MutationBatch, Subgraph, SubgraphContext, SubgraphProgram, WarmFrontier,
};
use ebv_graph::{Edge, VertexId};

use super::kernel::{gated_min_superstep, Activation};

/// The CC [`InvalidationPolicy`]: a deletion may split the components of its
/// endpoints, and min-label propagation cannot *raise* stale labels, so the
/// endpoints' whole prior components are conservatively reset.
#[derive(Debug, Clone, Default)]
pub(crate) struct ComponentInvalidation {
    /// Prior labels whose components must be recomputed from scratch.
    dirty: HashSet<u64>,
}

impl InvalidationPolicy for ComponentInvalidation {
    type Value = u64;

    fn on_removed_edge(&mut self, _edge: Edge, src_prior: Option<&u64>, dst_prior: Option<&u64>) {
        for &label in [src_prior, dst_prior].into_iter().flatten() {
            self.dirty.insert(label);
        }
    }

    fn is_dirty(&self, _vertex: VertexId, prior: &u64) -> bool {
        self.dirty.contains(prior)
    }
}

/// Warm-start Connected Components (see the module-level discussion in
/// [`crate::incremental`] for the full design).
///
/// Build one per epoch from the previous epoch's labels and the applied
/// [`MutationBatch`] (or [`absorb`](Self::absorb) several batches applied
/// since those labels were produced), then execute with
/// [`BspEngine::run_warm`](ebv_bsp::BspEngine::run_warm) passing the same
/// prior labels.
///
/// # Examples
///
/// ```
/// use ebv_algorithms::{ConnectedComponents, IncrementalConnectedComponents};
/// use ebv_bsp::{BspEngine, DistributedGraph, MutationBatch};
/// use ebv_graph::Edge;
/// use ebv_partition::PartitionId;
///
/// # fn main() -> Result<(), ebv_bsp::BspError> {
/// let mut distributed = DistributedGraph::build_streaming(
///     2,
///     None,
///     vec![
///         (Edge::from((0u64, 1u64)), PartitionId::new(0)),
///         (Edge::from((2u64, 3u64)), PartitionId::new(1)),
///     ],
/// )?;
/// let engine = BspEngine::sequential();
/// let cold = engine.run(&distributed, &ConnectedComponents::new())?;
///
/// let mut batch = MutationBatch::new();
/// batch.record_insert(Edge::from((1u64, 2u64)), PartitionId::new(0));
/// distributed.apply_mutations(&batch)?;
///
/// let program = IncrementalConnectedComponents::from_batch(&cold.values, &batch);
/// let warm = engine.run_warm(&distributed, &program, &cold.values)?;
/// assert_eq!(warm.values, vec![0, 0, 0, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalConnectedComponents {
    frontier: WarmFrontier<ComponentInvalidation>,
}

impl IncrementalConnectedComponents {
    /// Creates a pure warm restart: nothing is dirty, nothing is seeded, so
    /// the run converges immediately when the prior labels are still valid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the program for one mutation batch applied on top of the
    /// graph that produced `prior`.
    pub fn from_batch(prior: &[u64], batch: &MutationBatch) -> Self {
        let mut program = Self::new();
        program.absorb(prior, batch);
        program
    }

    /// Folds one more mutation batch into the dirty/seed sets. Every batch
    /// applied since `prior` was computed must be absorbed (in any order)
    /// before the warm run.
    pub fn absorb(&mut self, prior: &[u64], batch: &MutationBatch) {
        self.frontier.absorb(prior, batch);
    }

    /// Number of prior component labels scheduled for recomputation.
    pub fn dirty_components(&self) -> usize {
        self.frontier.policy().dirty.len()
    }

    /// Number of seed vertices activated in the first superstep.
    pub fn seed_vertices(&self) -> usize {
        self.frontier.seed_vertices()
    }
}

impl SubgraphProgram for IncrementalConnectedComponents {
    type Value = u64;
    type Message = u64;

    fn name(&self) -> String {
        "CC-warm".to_string()
    }

    fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
        vertex.raw()
    }

    fn warm_value(&self, vertex: VertexId, prior: &u64, _subgraph: &Subgraph) -> u64 {
        self.frontier
            .retain(vertex, prior)
            .copied()
            .unwrap_or_else(|| vertex.raw())
    }

    fn run_superstep(&self, ctx: &mut SubgraphContext<'_, u64, u64>, superstep: usize) -> usize {
        gated_min_superstep(
            ctx,
            superstep,
            true,
            0,
            u64::MAX,
            |raw| self.frontier.is_seed(raw),
            Activation::SelfLabeled,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::cc_reference;
    use crate::ConnectedComponents;
    use ebv_bsp::{BspEngine, DistributedGraph};
    use ebv_graph::Graph;
    use ebv_partition::{EbvPartitioner, PartitionId, Partitioner};

    fn distribute(graph: &Graph, p: usize) -> (DistributedGraph, Vec<(Edge, PartitionId)>) {
        let partition = EbvPartitioner::new().partition(graph, p).unwrap();
        let vc = partition.as_vertex_cut().unwrap();
        let assigned: Vec<(Edge, PartitionId)> = graph
            .edges()
            .iter()
            .copied()
            .zip(vc.assignment().iter().copied())
            .collect();
        (
            DistributedGraph::build(graph, &partition).unwrap(),
            assigned,
        )
    }

    #[test]
    fn warm_cc_handles_inserts_deletes_and_splits() {
        let graph = ebv_graph::generators::named::small_social_graph();
        let (mut distributed, assigned) = distribute(&graph, 3);
        let engine = BspEngine::sequential();
        let mut labels = engine
            .run(&distributed, &ConnectedComponents::new())
            .unwrap()
            .values;
        assert_eq!(labels, cc_reference(&graph));

        // Three epochs: deletions that may split, insertions that merge,
        // and a mixed batch growing the universe.
        let mut survivors = assigned.clone();
        let batches: Vec<Vec<(bool, Edge, PartitionId)>> = vec![
            survivors
                .iter()
                .step_by(4)
                .map(|&(e, p)| (false, e, p))
                .collect(),
            vec![
                (true, Edge::from((0u64, 13u64)), PartitionId::new(1)),
                (true, Edge::from((2u64, 7u64)), PartitionId::new(2)),
            ],
            vec![
                (false, survivors[1].0, survivors[1].1),
                (true, Edge::from((5u64, 20u64)), PartitionId::new(0)),
            ],
        ];
        for ops in batches {
            let mut batch = MutationBatch::new();
            for &(is_insert, e, p) in &ops {
                if is_insert {
                    batch.record_insert(e, p);
                    survivors.push((e, p));
                } else {
                    batch.record_delete(e, p);
                    let pos = survivors.iter().rposition(|&pair| pair == (e, p)).unwrap();
                    survivors.remove(pos);
                }
            }
            let program = IncrementalConnectedComponents::from_batch(&labels, &batch);
            distributed.apply_mutations(&batch).unwrap();
            let warm = engine.run_warm(&distributed, &program, &labels).unwrap();
            let cold = engine
                .run(&distributed, &ConnectedComponents::new())
                .unwrap();
            assert_eq!(warm.values, cold.values, "warm CC must be bit-identical");
            labels = warm.values;
        }
    }

    #[test]
    fn warm_cc_on_an_untouched_graph_converges_immediately() {
        let graph = ebv_graph::generators::named::two_triangles();
        let (distributed, _) = distribute(&graph, 2);
        let engine = BspEngine::sequential();
        let cold = engine
            .run(&distributed, &ConnectedComponents::new())
            .unwrap();
        let program = IncrementalConnectedComponents::new();
        assert_eq!(program.dirty_components(), 0);
        assert_eq!(program.seed_vertices(), 0);
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.supersteps, 1, "nothing to do: one quiescent superstep");
        assert_eq!(warm.stats.total_messages(), 0);
    }
}
