//! Warm-start PageRank (see the module-level discussion in
//! [`crate::incremental`] for the full design).

use ebv_bsp::{DistributedGraph, Subgraph, SubgraphContext, SubgraphProgram};
use ebv_graph::VertexId;

use crate::pagerank::{pagerank_superstep, PageRankValue};

/// Warm-start PageRank (see the module-level discussion in
/// [`crate::incremental`] for the full design).
///
/// Unlike [`crate::PageRank`] the program is constructed from the (possibly
/// mutated) [`DistributedGraph`] itself — the dynamic path never
/// materializes a global [`ebv_graph::Graph`] — by counting owned local
/// edges, which cover every edge exactly once. Seed it from the previous
/// epoch's ranks via
/// [`BspEngine::run_warm`](ebv_bsp::BspEngine::run_warm); a handful of warm
/// iterations reaches the tolerance a cold uniform start needs several times
/// as many iterations for, and the bit-exact message gating of the shared
/// kernel suppresses replica traffic wherever ranks have stopped moving.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalPageRank {
    damping: f64,
    iterations: usize,
    num_vertices: usize,
    out_degrees: Vec<u64>,
}

impl IncrementalPageRank {
    /// Creates the program for `distributed` with the given number of warm
    /// iterations and the conventional damping factor 0.85.
    pub fn from_distributed(distributed: &DistributedGraph, iterations: usize) -> Self {
        let mut out_degrees = vec![0u64; distributed.num_vertices()];
        for sg in distributed.subgraphs() {
            for (edge_index, edge) in sg.edges().iter().enumerate() {
                if sg.owns_edge(edge_index) {
                    out_degrees[edge.src.index()] += 1;
                }
            }
        }
        IncrementalPageRank {
            damping: 0.85,
            iterations,
            num_vertices: distributed.num_vertices(),
            out_degrees,
        }
    }

    /// Overrides the damping factor (default 0.85).
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.damping = damping;
        self
    }

    /// The configured number of warm iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The configured damping factor.
    pub fn damping(&self) -> f64 {
        self.damping
    }
}

impl SubgraphProgram for IncrementalPageRank {
    type Value = PageRankValue;
    type Message = f64;

    fn name(&self) -> String {
        "PageRank-warm".to_string()
    }

    fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> PageRankValue {
        PageRankValue {
            rank: 1.0 / self.num_vertices as f64,
            partial: 0.0,
        }
    }

    fn warm_value(
        &self,
        _vertex: VertexId,
        prior: &PageRankValue,
        _subgraph: &Subgraph,
    ) -> PageRankValue {
        PageRankValue {
            rank: prior.rank,
            partial: 0.0,
        }
    }

    fn run_superstep(
        &self,
        ctx: &mut SubgraphContext<'_, PageRankValue, f64>,
        superstep: usize,
    ) -> usize {
        pagerank_superstep(
            self.damping,
            self.num_vertices,
            &self.out_degrees,
            ctx,
            superstep,
            true,
        )
    }

    fn max_supersteps(&self) -> usize {
        2 * self.iterations
    }

    fn halt_on_quiescence(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ranks, PageRank};
    use ebv_bsp::{BspEngine, MutationBatch};
    use ebv_graph::Edge;
    use ebv_partition::{EbvPartitioner, PartitionId, Partitioner};

    #[test]
    fn warm_pagerank_matches_cold_to_tolerance_and_gates_messages() {
        let graph = ebv_graph::generators::named::small_social_graph();
        let partition = EbvPartitioner::new().partition(&graph, 3).unwrap();
        let mut distributed = DistributedGraph::build(&graph, &partition).unwrap();
        let engine = BspEngine::sequential();
        let cold = engine
            .run(&distributed, &PageRank::new(&graph, 40))
            .unwrap();

        // Mutate lightly, then warm-start from the stale ranks.
        let mut batch = MutationBatch::new();
        batch.record_insert(Edge::from((0u64, 12u64)), PartitionId::new(1));
        distributed.apply_mutations(&batch).unwrap();
        let program = IncrementalPageRank::from_distributed(&distributed, 40);
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();

        // Cold reference on the mutated distribution with the same kernel
        // and iteration count (`run` seeds the uniform initial value).
        let cold_after = engine.run(&distributed, &program).unwrap();
        for (a, b) in ranks(&warm.values).iter().zip(ranks(&cold_after.values)) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // Near the fixpoint the bit-exact gating suppresses traffic: the
        // warm run cannot send more than the cold run of the same kernel.
        assert!(warm.stats.total_messages() <= cold_after.stats.total_messages());
    }

    #[test]
    fn incremental_pagerank_accessors() {
        let distributed = DistributedGraph::build_streaming(
            2,
            None,
            vec![(Edge::from((0u64, 1u64)), PartitionId::new(0))],
        )
        .unwrap();
        let program = IncrementalPageRank::from_distributed(&distributed, 4).with_damping(0.9);
        assert_eq!(program.iterations(), 4);
        assert!((program.damping() - 0.9).abs() < 1e-12);
        assert_eq!(program.max_supersteps(), 8);
        assert!(!program.halt_on_quiescence());
        assert_eq!(program.name(), "PageRank-warm");
    }
}
