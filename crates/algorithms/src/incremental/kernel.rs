//! The gated worklist kernel shared by the min-propagation warm-start
//! programs (CC, SSSP, BFS).
//!
//! All three algorithms compute a minimum fixpoint over `u64` values with
//! min-folded replica messages. One warm superstep is always the same three
//! moves:
//!
//! 1. fold replica messages (minimum wins) — receivers join the frontier;
//! 2. on the first superstep, additionally activate the disturbed region
//!    (the program-specific [`Activation`] plus the seed vertices);
//! 3. run a worklist propagation to the local fixpoint, touching only edges
//!    incident to active vertices, then ship only *changed* boundary values
//!    to the other replicas (the message gating).

use ebv_bsp::SubgraphContext;

/// How the first warm superstep picks its extra activation frontier, beyond
/// message receivers and seed vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Activation {
    /// Activate vertices whose value equals their own raw id: reset members
    /// of dirty components, new vertices, and component minima, whose
    /// re-scan is free of updates (warm CC).
    SelfLabeled,
    /// Activate propagation-capable vertices with at least one invalidated
    /// (`infinity`-valued) out-neighbor — the settled rim of the reset cone
    /// that must re-relax into it (warm SSSP/BFS).
    DistanceFrontier,
}

/// Runs one gated min-propagation superstep and returns the number of local
/// vertices whose value changed.
///
/// * `undirected` — whether values flow both ways along each edge (CC) or
///   only src→dst (SSSP/BFS);
/// * `step` — the increment a value picks up crossing an edge (0 for label
///   propagation, 1 for hop distances);
/// * `infinity` — the "cannot propagate" value (`u64::MAX` sentinels);
/// * `is_seed` — raw-id membership in the warm frontier's seed set.
pub(crate) fn gated_min_superstep(
    ctx: &mut SubgraphContext<'_, u64, u64>,
    superstep: usize,
    undirected: bool,
    step: u64,
    infinity: u64,
    is_seed: impl Fn(u64) -> bool,
    activation: Activation,
) -> usize {
    let sg = ctx.subgraph();
    let n = sg.num_vertices();
    let mut changed = vec![false; n];
    let mut in_queue = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();

    // Fold replica values received during the previous communication stage;
    // receivers join the propagation frontier.
    for local in 0..n {
        if let Some(min) = ctx.messages(local).iter().copied().min() {
            if min < *ctx.value(local) {
                ctx.set_value(local, min);
                changed[local] = true;
                if !in_queue[local] {
                    in_queue[local] = true;
                    queue.push(local);
                }
            }
        }
    }

    // First superstep: activate the disturbed region only.
    if superstep == 0 {
        for (local, queued) in in_queue.iter_mut().enumerate() {
            if *queued {
                continue;
            }
            let vertex = sg.vertex_at(local);
            let value = *ctx.value(local);
            let active = is_seed(vertex.raw())
                || match activation {
                    Activation::SelfLabeled => value == vertex.raw(),
                    Activation::DistanceFrontier => {
                        value != infinity
                            && sg
                                .out_neighbors(local)
                                .iter()
                                .any(|&w| *ctx.value(w as usize) == infinity)
                    }
                };
            if active {
                *queued = true;
                queue.push(local);
            }
        }
    }

    // Worklist propagation to the local fixpoint, touching only edges
    // incident to the active frontier; each direction streams one CSR
    // neighbour slice.
    while let Some(u) = queue.pop() {
        in_queue[u] = false;
        let directions = if undirected { 2 } else { 1 };
        for direction in 0..directions {
            let neighbors = if direction == 0 {
                sg.out_neighbors(u)
            } else {
                sg.in_neighbors(u)
            };
            for &w in neighbors {
                let w = w as usize;
                ctx.add_work(1);
                let a = *ctx.value(u);
                let b = *ctx.value(w);
                if a != infinity && a.saturating_add(step) < b {
                    ctx.set_value(w, a + step);
                    changed[w] = true;
                    if !in_queue[w] {
                        in_queue[w] = true;
                        queue.push(w);
                    }
                } else if undirected && b != infinity && b.saturating_add(step) < a {
                    ctx.set_value(u, b + step);
                    changed[u] = true;
                    if !in_queue[u] {
                        in_queue[u] = true;
                        queue.push(u);
                    }
                }
            }
        }
    }

    // Ship changed boundary values to the other replicas (the gating: an
    // unchanged vertex is silent even when it re-scans its edges).
    let mut updates = 0usize;
    for (local, &was_changed) in changed.iter().enumerate() {
        if was_changed {
            updates += 1;
            let value = *ctx.value(local);
            ctx.send_to_replicas(local, value);
        }
    }
    updates
}
