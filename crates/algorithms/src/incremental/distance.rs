//! Warm-start SSSP and BFS: delta-stepping-style re-activation of hop
//! distances across mutation epochs (see the module-level discussion in
//! [`crate::incremental`] for the full design).
//!
//! Both programs share [`DistanceInvalidation`] and one core:
//!
//! * **Insertions** only shorten paths, so every prior distance remains a
//!   valid upper bound; the inserted endpoints are seeded and relax
//!   downward from there.
//! * **Deletions** may lengthen or sever paths. A deleted edge `u→v` can
//!   only have carried shortest paths if it was *tight* in the prior
//!   outcome (`prior[u] + 1 == prior[v]`), and every vertex whose shortest
//!   path crossed it then satisfies `prior[w] >= prior[v]` (subpaths of
//!   shortest paths are shortest). The minimum such `prior[v]` over the
//!   batch is the **horizon**: all distances at or beyond it are reset to
//!   unreachable, everything strictly below it provably kept its exact
//!   distance. The surviving settled rim re-relaxes into the reset cone.
//!
//! Every warm seed is therefore an upper bound of the new true distance
//! with the source at 0, so the monotone relaxation fixpoint *is* the cold
//! answer — warm SSSP/BFS are bit-identical to cold runs, they just start
//! next to the fixpoint instead of at infinity.

use std::collections::HashSet;

use ebv_bsp::{
    DistributedGraph, InvalidationPolicy, MutationBatch, Subgraph, SubgraphContext,
    SubgraphProgram, WarmFrontier,
};
use ebv_graph::{Edge, VertexId};

use super::kernel::{gated_min_superstep, Activation};
use crate::{UNREACHABLE, UNVISITED};

/// The shortest-path [`InvalidationPolicy`], two-tier:
///
/// * the **horizon** — the minimum prior distance a removed tight edge may
///   have produced — is the graph-free conservative tier maintained by
///   [`absorb`](IncrementalSssp::absorb): prior distances at or beyond it
///   are dirty, everything below is provably unaffected;
/// * the **cone** — the precise per-vertex invalidation installed by
///   [`from_distributed`](IncrementalSssp::from_distributed), which walks
///   the distribution's tight edges and keeps every vertex that still has a
///   shortest-path certificate avoiding the deleted edges.
#[derive(Debug, Clone)]
pub(crate) struct DistanceInvalidation {
    source: VertexId,
    /// Smallest prior distance a deletion may have invalidated;
    /// [`UNREACHABLE`] when no deletion touched a tight edge.
    horizon: u64,
    /// Raw ids whose prior distance lost every deletion-free certificate
    /// (the downstream cones of the deleted tight edges).
    cone: HashSet<u64>,
}

impl DistanceInvalidation {
    fn new(source: VertexId) -> Self {
        DistanceInvalidation {
            source,
            horizon: UNREACHABLE,
            cone: HashSet::new(),
        }
    }
}

impl InvalidationPolicy for DistanceInvalidation {
    type Value = u64;

    fn on_removed_edge(&mut self, _edge: Edge, src_prior: Option<&u64>, dst_prior: Option<&u64>) {
        // Endpoints that postdate the prior outcome carry no settled
        // distance, so removing an edge between them invalidates nothing.
        if let (Some(&src), Some(&dst)) = (src_prior, dst_prior) {
            if src != UNREACHABLE && src + 1 == dst {
                self.horizon = self.horizon.min(dst);
            }
        }
    }

    fn is_dirty(&self, vertex: VertexId, prior: &u64) -> bool {
        // The source is always exactly 0; unreachable priors reset to the
        // same unreachable initial, so >= keeps the predicate trivial.
        vertex != self.source && (*prior >= self.horizon || self.cone.contains(&vertex.raw()))
    }
}

/// Computes the precise invalidation cone over the **post-mutation**
/// distribution: every vertex with a finite prior distance that no longer
/// has a *tight certificate chain* — a path of present edges `u→v` with
/// `prior[u] + 1 == prior[v]` all the way from the source.
///
/// A certified vertex's prior is an upper bound of its new distance
/// (induction up the chain; a coincidentally tight *inserted* edge only
/// strengthens the certificate), so only the returned cone has to reset
/// and re-settle from the surviving rim. One O(E + V + D) vector sweep —
/// cheap enough to sit inside the timed warm path.
fn unsupported_cone(
    source: VertexId,
    distributed: &DistributedGraph,
    prior: &[u64],
) -> HashSet<u64> {
    // Bucket the tight edges by head distance, streaming each subgraph's
    // CSR adjacency (tails grouped, one offset lookup per tail). Hop
    // distances are < |V|, so anything larger cannot come from a real
    // outcome; such an edge simply certifies nothing. Within a level the
    // sweep below is order-independent (every tail sits one level down),
    // so the CSR visit order is as good as edge order.
    let max_level = prior.len();
    let mut tight_by_level: Vec<Vec<(usize, usize)>> = vec![Vec::new(); max_level + 1];
    for sg in distributed.subgraphs() {
        for (u_local, &u) in sg.vertices().iter().enumerate() {
            let Some(&du) = prior.get(u.index()) else {
                continue;
            };
            if du == UNREACHABLE {
                continue;
            }
            for &v_local in sg.out_neighbors(u_local) {
                let v = sg.vertex_at(v_local as usize);
                let Some(&dv) = prior.get(v.index()) else {
                    continue;
                };
                if du + 1 == dv && (dv as usize) <= max_level {
                    tight_by_level[dv as usize].push((u.index(), v.index()));
                }
            }
        }
    }

    // Walk the levels upward: a vertex is supported when any tight
    // in-neighbor one level below is (tails of a level-d edge sit at d-1,
    // so they are already settled when their level is processed).
    let mut supported = vec![false; prior.len()];
    if prior.get(source.index()) == Some(&0) {
        supported[source.index()] = true;
    }
    for level in tight_by_level {
        for (u, v) in level {
            if supported[u] {
                supported[v] = true;
            }
        }
    }
    prior
        .iter()
        .enumerate()
        .filter(|&(index, &distance)| {
            distance != UNREACHABLE && index as u64 != source.raw() && !supported[index]
        })
        .map(|(index, _)| index as u64)
        .collect()
}

/// The shared warm-distance machinery behind [`IncrementalSssp`] and
/// [`IncrementalBfs`]; the two differ only in program name and in which
/// cold program they are bit-identical to.
#[derive(Debug, Clone)]
struct WarmDistanceCore {
    source: VertexId,
    frontier: WarmFrontier<DistanceInvalidation>,
}

impl WarmDistanceCore {
    fn new(source: VertexId) -> Self {
        WarmDistanceCore {
            source,
            frontier: WarmFrontier::new(DistanceInvalidation::new(source)),
        }
    }

    fn absorb(&mut self, prior: &[u64], batch: &MutationBatch) {
        self.frontier.absorb(prior, batch);
    }

    fn from_distributed(
        source: VertexId,
        distributed: &DistributedGraph,
        prior: &[u64],
        batch: &MutationBatch,
    ) -> Self {
        let mut core = Self::new(source);
        core.frontier.absorb_seeds(prior, batch);
        core.frontier.policy_mut().cone = unsupported_cone(source, distributed, prior);
        core
    }

    fn cone_vertices(&self) -> usize {
        self.frontier.policy().cone.len()
    }

    fn horizon(&self) -> Option<u64> {
        match self.frontier.policy().horizon {
            UNREACHABLE => None,
            h => Some(h),
        }
    }

    fn initial_value(&self, vertex: VertexId) -> u64 {
        if vertex == self.source {
            0
        } else {
            UNREACHABLE
        }
    }

    fn warm_value(&self, vertex: VertexId, prior: &u64) -> u64 {
        self.frontier
            .retain(vertex, prior)
            .copied()
            .unwrap_or_else(|| self.initial_value(vertex))
    }

    fn run_superstep(&self, ctx: &mut SubgraphContext<'_, u64, u64>, superstep: usize) -> usize {
        gated_min_superstep(
            ctx,
            superstep,
            false,
            1,
            UNREACHABLE,
            |raw| self.frontier.is_seed(raw),
            Activation::DistanceFrontier,
        )
    }
}

macro_rules! warm_distance_program {
    ($(#[$doc:meta])* $name:ident, $program_name:literal, $root:ident, $root_doc:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: WarmDistanceCore,
        }

        impl $name {
            #[doc = concat!("Creates a pure warm restart rooted at `", $root_doc, "`: nothing")]
            /// is dirty, nothing is seeded, so the run converges immediately
            /// when the prior distances are still valid.
            pub fn new($root: VertexId) -> Self {
                $name {
                    core: WarmDistanceCore::new($root),
                }
            }

            /// Creates the program for one mutation batch applied on top of
            /// the graph that produced `prior`, without looking at the graph
            /// itself: deletions invalidate via the conservative horizon.
            pub fn from_batch($root: VertexId, prior: &[u64], batch: &MutationBatch) -> Self {
                let mut program = Self::new($root);
                program.absorb(prior, batch);
                program
            }

            /// Creates the program for one mutation batch, walking the
            /// **post-mutation** `distributed` (the batch already applied,
            /// exactly what `EventPipeline::run_applied` hands its epoch
            /// callback) to compute the *precise* invalidation cone — only
            /// vertices whose every tight shortest-path certificate crossed
            /// a deleted edge are reset, instead of everything at or beyond
            /// the horizon. `batch` contributes the insertion seeds.
            pub fn from_distributed(
                $root: VertexId,
                distributed: &DistributedGraph,
                prior: &[u64],
                batch: &MutationBatch,
            ) -> Self {
                $name {
                    core: WarmDistanceCore::from_distributed($root, distributed, prior, batch),
                }
            }

            /// Folds one more mutation batch into the horizon/seed state.
            /// Every batch applied since `prior` was computed must be
            /// absorbed (in any order) before the warm run.
            pub fn absorb(&mut self, prior: &[u64], batch: &MutationBatch) {
                self.core.absorb(prior, batch);
            }

            #[doc = concat!("The ", $root_doc, " vertex.")]
            pub fn $root(&self) -> VertexId {
                self.core.source
            }

            /// The settled horizon: the smallest prior distance an absorbed
            /// deletion may have invalidated, or `None` when no deletion
            /// touched a tight edge (all prior distances survive).
            pub fn horizon(&self) -> Option<u64> {
                self.core.horizon()
            }

            /// Number of seed vertices activated in the first superstep.
            pub fn seed_vertices(&self) -> usize {
                self.core.frontier.seed_vertices()
            }

            /// Number of vertices in the precise invalidation cone computed
            /// by [`from_distributed`](Self::from_distributed) (0 for the
            /// horizon-based constructors).
            pub fn cone_vertices(&self) -> usize {
                self.core.cone_vertices()
            }
        }

        impl SubgraphProgram for $name {
            type Value = u64;
            type Message = u64;

            fn name(&self) -> String {
                $program_name.to_string()
            }

            fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
                self.core.initial_value(vertex)
            }

            fn warm_value(&self, vertex: VertexId, prior: &u64, _subgraph: &Subgraph) -> u64 {
                self.core.warm_value(vertex, prior)
            }

            fn run_superstep(
                &self,
                ctx: &mut SubgraphContext<'_, u64, u64>,
                superstep: usize,
            ) -> usize {
                self.core.run_superstep(ctx, superstep)
            }
        }
    };
}

warm_distance_program!(
    /// Warm-start Single-Source Shortest Path: distance-equal (in fact
    /// bit-identical — hop distances are integers) to a cold
    /// [`crate::SingleSourceShortestPath`] run on the mutated graph. See
    /// the module-level discussion in [`crate::incremental`] for the
    /// invalidation design.
    ///
    /// # Examples
    ///
    /// ```
    /// use ebv_algorithms::{IncrementalSssp, SingleSourceShortestPath};
    /// use ebv_bsp::{BspEngine, DistributedGraph, MutationBatch};
    /// use ebv_graph::{Edge, VertexId};
    /// use ebv_partition::PartitionId;
    ///
    /// # fn main() -> Result<(), ebv_bsp::BspError> {
    /// let mut distributed = DistributedGraph::build_streaming(
    ///     2,
    ///     None,
    ///     vec![
    ///         (Edge::from((0u64, 1u64)), PartitionId::new(0)),
    ///         (Edge::from((1u64, 2u64)), PartitionId::new(1)),
    ///     ],
    /// )?;
    /// let engine = BspEngine::sequential();
    /// let source = VertexId::new(0);
    /// let cold = engine.run(&distributed, &SingleSourceShortestPath::new(source))?;
    /// assert_eq!(cold.values, vec![0, 1, 2]);
    ///
    /// // A shortcut 0→2 arrives: only its endpoints re-activate.
    /// let mut batch = MutationBatch::new();
    /// batch.record_insert(Edge::from((0u64, 2u64)), PartitionId::new(0));
    /// distributed.apply_mutations(&batch)?;
    ///
    /// let program = IncrementalSssp::from_batch(source, &cold.values, &batch);
    /// assert_eq!(program.horizon(), None, "insertions invalidate nothing");
    /// let warm = engine.run_warm(&distributed, &program, &cold.values)?;
    /// assert_eq!(warm.values, vec![0, 1, 1]);
    /// # Ok(())
    /// # }
    /// ```
    IncrementalSssp,
    "SSSP-warm",
    source,
    "source"
);

warm_distance_program!(
    /// Warm-start Breadth-First Search: bit-identical to a cold
    /// [`crate::BreadthFirstSearch`] run on the mutated graph (BFS depths
    /// are unit-weight shortest paths, so the warm machinery is exactly
    /// [`IncrementalSssp`]'s). See the module-level discussion in
    /// [`crate::incremental`] for the invalidation design.
    IncrementalBfs,
    "BFS-warm",
    root,
    "root"
);

// `UNVISITED == UNREACHABLE` is what lets BFS reuse the SSSP core; assert
// the coupling the types cannot express.
const _: () = assert!(UNVISITED == UNREACHABLE);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BreadthFirstSearch, SingleSourceShortestPath};
    use ebv_bsp::{BspEngine, DistributedGraph};
    use ebv_graph::Graph;
    use ebv_partition::{EbvPartitioner, PartitionId, Partitioner};

    fn distribute(graph: &Graph, p: usize) -> (DistributedGraph, Vec<(Edge, PartitionId)>) {
        let partition = EbvPartitioner::new().partition(graph, p).unwrap();
        let vc = partition.as_vertex_cut().unwrap();
        let assigned: Vec<(Edge, PartitionId)> = graph
            .edges()
            .iter()
            .copied()
            .zip(vc.assignment().iter().copied())
            .collect();
        (
            DistributedGraph::build(graph, &partition).unwrap(),
            assigned,
        )
    }

    #[test]
    fn warm_sssp_handles_inserts_deletes_and_severed_paths() {
        let graph = ebv_graph::generators::named::small_social_graph();
        let (mut distributed, assigned) = distribute(&graph, 3);
        let engine = BspEngine::sequential();
        let source = VertexId::new(0);
        let mut distances = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap()
            .values;

        // Epoch 1: delete every fourth edge (may sever shortest paths);
        // epoch 2: insert shortcuts; epoch 3: mixed batch growing the
        // universe.
        let mut survivors = assigned.clone();
        let batches: Vec<Vec<(bool, Edge, PartitionId)>> = vec![
            survivors
                .iter()
                .step_by(4)
                .map(|&(e, p)| (false, e, p))
                .collect(),
            vec![
                (true, Edge::from((0u64, 13u64)), PartitionId::new(1)),
                (true, Edge::from((2u64, 7u64)), PartitionId::new(2)),
            ],
            vec![
                (false, survivors[1].0, survivors[1].1),
                (true, Edge::from((5u64, 20u64)), PartitionId::new(0)),
            ],
        ];
        for ops in batches {
            let mut batch = MutationBatch::new();
            for &(is_insert, e, p) in &ops {
                if is_insert {
                    batch.record_insert(e, p);
                    survivors.push((e, p));
                } else {
                    batch.record_delete(e, p);
                    let pos = survivors.iter().rposition(|&pair| pair == (e, p)).unwrap();
                    survivors.remove(pos);
                }
            }
            let program = IncrementalSssp::from_batch(source, &distances, &batch);
            distributed.apply_mutations(&batch).unwrap();
            let warm = engine.run_warm(&distributed, &program, &distances).unwrap();
            let cold = engine
                .run(&distributed, &SingleSourceShortestPath::new(source))
                .unwrap();
            assert_eq!(warm.values, cold.values, "warm SSSP must be distance-equal");
            distances = warm.values;
        }
    }

    #[test]
    fn warm_sssp_on_an_untouched_graph_converges_immediately() {
        let graph = ebv_graph::generators::named::two_triangles();
        let (distributed, _) = distribute(&graph, 2);
        let engine = BspEngine::sequential();
        let source = VertexId::new(0);
        let cold = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap();
        let program = IncrementalSssp::new(source);
        assert_eq!(program.source(), source);
        assert_eq!(program.horizon(), None);
        assert_eq!(program.seed_vertices(), 0);
        assert_eq!(program.name(), "SSSP-warm");
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.supersteps, 1, "nothing to do: one quiescent superstep");
        assert_eq!(warm.stats.total_messages(), 0);
    }

    #[test]
    fn deleting_a_tight_edge_sets_the_horizon_and_resets_the_cone() {
        // Path 0→1→2→3 distributed over two workers; deleting 1→2 severs
        // the tail, which must re-settle to unreachable.
        let edges = vec![
            (Edge::from((0u64, 1u64)), PartitionId::new(0)),
            (Edge::from((1u64, 2u64)), PartitionId::new(0)),
            (Edge::from((2u64, 3u64)), PartitionId::new(1)),
        ];
        let mut distributed = DistributedGraph::build_streaming(2, None, edges).unwrap();
        let engine = BspEngine::sequential();
        let source = VertexId::new(0);
        let cold = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap();
        assert_eq!(cold.values, vec![0, 1, 2, 3]);

        let mut batch = MutationBatch::new();
        batch.record_delete(Edge::from((1u64, 2u64)), PartitionId::new(0));
        let program = IncrementalSssp::from_batch(source, &cold.values, &batch);
        // The deleted edge was tight with prior head distance 2: vertices 2
        // and 3 reset, vertices 0 and 1 keep exact distances.
        assert_eq!(program.horizon(), Some(2));
        distributed.apply_mutations(&batch).unwrap();
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();
        assert_eq!(warm.values, vec![0, 1, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn deleting_a_slack_edge_invalidates_nothing() {
        // 0→1, 0→2, 1→2: the edge 1→2 is slack (prior 0+... 1+1 > 1), so
        // deleting it must keep every settled distance.
        let edges = vec![
            (Edge::from((0u64, 1u64)), PartitionId::new(0)),
            (Edge::from((0u64, 2u64)), PartitionId::new(1)),
            (Edge::from((1u64, 2u64)), PartitionId::new(0)),
        ];
        let mut distributed = DistributedGraph::build_streaming(2, None, edges).unwrap();
        let engine = BspEngine::sequential();
        let source = VertexId::new(0);
        let cold = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap();
        assert_eq!(cold.values, vec![0, 1, 1]);

        let mut batch = MutationBatch::new();
        batch.record_delete(Edge::from((1u64, 2u64)), PartitionId::new(0));
        let program = IncrementalSssp::from_batch(source, &cold.values, &batch);
        assert_eq!(
            program.horizon(),
            None,
            "slack edges carry no shortest path"
        );
        distributed.apply_mutations(&batch).unwrap();
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();
        assert_eq!(warm.values, vec![0, 1, 1]);
        assert_eq!(warm.supersteps, 1, "no invalidation, no seeds: quiescent");
    }

    #[test]
    fn the_precise_cone_spares_vertices_with_surviving_certificates() {
        // Diamond 0→1, 0→2, 1→3, 2→3: deleting 0→1 horizon-invalidates
        // everything at distance ≥ 1, but only vertex 1 actually lost its
        // certificate — 2 keeps 0→2 and 3 keeps 2→3.
        let edges = vec![
            (Edge::from((0u64, 1u64)), PartitionId::new(0)),
            (Edge::from((0u64, 2u64)), PartitionId::new(1)),
            (Edge::from((1u64, 3u64)), PartitionId::new(0)),
            (Edge::from((2u64, 3u64)), PartitionId::new(1)),
        ];
        let mut distributed = DistributedGraph::build_streaming(2, None, edges).unwrap();
        let engine = BspEngine::sequential();
        let source = VertexId::new(0);
        let cold = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap();
        assert_eq!(cold.values, vec![0, 1, 1, 2]);

        let mut batch = MutationBatch::new();
        batch.record_delete(Edge::from((0u64, 1u64)), PartitionId::new(0));
        let coarse = IncrementalSssp::from_batch(source, &cold.values, &batch);
        assert_eq!(
            coarse.horizon(),
            Some(1),
            "horizon resets everything settled"
        );
        distributed.apply_mutations(&batch).unwrap();
        let precise = IncrementalSssp::from_distributed(source, &distributed, &cold.values, &batch);
        assert_eq!(precise.horizon(), None);
        assert_eq!(
            precise.cone_vertices(),
            1,
            "only vertex 1 lost its certificate"
        );

        for program in [&coarse, &precise] {
            let warm = engine
                .run_warm(&distributed, program, &cold.values)
                .unwrap();
            assert_eq!(warm.values, vec![0, UNREACHABLE, 1, 2]);
        }
    }

    #[test]
    fn from_distributed_certifies_via_surviving_parallel_copies() {
        // Two parallel copies of 0→1 on different workers: deleting one
        // leaves a surviving certificate, so nothing is invalidated.
        let edges = vec![
            (Edge::from((0u64, 1u64)), PartitionId::new(0)),
            (Edge::from((0u64, 1u64)), PartitionId::new(1)),
            (Edge::from((1u64, 2u64)), PartitionId::new(1)),
        ];
        let mut distributed = DistributedGraph::build_streaming(2, None, edges).unwrap();
        let engine = BspEngine::sequential();
        let source = VertexId::new(0);
        let cold = engine
            .run(&distributed, &SingleSourceShortestPath::new(source))
            .unwrap();
        let mut batch = MutationBatch::new();
        batch.record_delete(Edge::from((0u64, 1u64)), PartitionId::new(0));
        distributed.apply_mutations(&batch).unwrap();
        let program = IncrementalSssp::from_distributed(source, &distributed, &cold.values, &batch);
        assert_eq!(program.cone_vertices(), 0, "a parallel copy survives");
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();
        assert_eq!(warm.values, vec![0, 1, 2]);
        assert_eq!(warm.supersteps, 1, "no invalidation, no seeds: quiescent");
    }

    #[test]
    fn warm_bfs_is_bit_identical_across_mixed_epochs() {
        let graph = ebv_graph::generators::named::small_social_graph();
        let (mut distributed, assigned) = distribute(&graph, 3);
        let engine = BspEngine::sequential();
        let root = VertexId::new(0);
        let mut depths = engine
            .run(&distributed, &BreadthFirstSearch::new(root))
            .unwrap()
            .values;

        let mut batch = MutationBatch::new();
        for &(e, p) in assigned.iter().step_by(3) {
            batch.record_delete(e, p);
        }
        batch.record_insert(Edge::from((0u64, 11u64)), PartitionId::new(1));
        let program = IncrementalBfs::from_batch(root, &depths, &batch);
        assert_eq!(program.root(), root);
        assert_eq!(program.name(), "BFS-warm");
        distributed.apply_mutations(&batch).unwrap();
        let warm = engine.run_warm(&distributed, &program, &depths).unwrap();
        let cold = engine
            .run(&distributed, &BreadthFirstSearch::new(root))
            .unwrap();
        assert_eq!(warm.values, cold.values, "warm BFS must be bit-identical");
        depths = warm.values;
        assert_eq!(depths[11], 1, "inserted edge re-activated its endpoints");
    }
}
