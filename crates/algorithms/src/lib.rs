//! # ebv-algorithms — the evaluation applications
//!
//! The paper evaluates partition algorithms by running three classic graph
//! applications on the subgraph-centric BSP framework: Connected Components,
//! PageRank and Single-Source Shortest Path (Section V-A). This crate
//! implements all three as [`SubgraphProgram`](ebv_bsp::SubgraphProgram)s,
//! plus BFS as an additional workload, and provides sequential reference
//! implementations used to validate the distributed results for every
//! partitioner.
//!
//! ## Quick example
//!
//! ```
//! use ebv_algorithms::ConnectedComponents;
//! use ebv_bsp::{BspEngine, DistributedGraph};
//! use ebv_graph::generators::{GraphGenerator, RmatGenerator};
//! use ebv_partition::{EbvPartitioner, Partitioner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = RmatGenerator::new(9, 8).with_seed(1).generate()?;
//! let partition = EbvPartitioner::new().partition(&graph, 8)?;
//! let distributed = DistributedGraph::build(&graph, &partition)?;
//! let outcome = BspEngine::sequential().run(&distributed, &ConnectedComponents::new())?;
//! println!(
//!     "{} supersteps, {} replica messages",
//!     outcome.supersteps,
//!     outcome.stats.total_messages()
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod bfs;
mod cc;
pub mod incremental;
mod pagerank;
pub mod reference;
mod sssp;

pub use bfs::{BreadthFirstSearch, UNVISITED};
pub use cc::ConnectedComponents;
pub use incremental::{
    IncrementalBfs, IncrementalConnectedComponents, IncrementalPageRank, IncrementalSssp,
};
pub use pagerank::{ranks, PageRank, PageRankValue};
pub use sssp::{SingleSourceShortestPath, UNREACHABLE};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        ranks, BreadthFirstSearch, ConnectedComponents, IncrementalBfs,
        IncrementalConnectedComponents, IncrementalPageRank, IncrementalSssp, PageRank,
        SingleSourceShortestPath,
    };
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use ebv_bsp::{BspEngine, DistributedGraph};
    use ebv_graph::{GraphBuilder, VertexId};
    use ebv_partition::paper_partitioners;

    use crate::reference::{cc_reference, pagerank_reference, sssp_reference};
    use crate::{ranks, ConnectedComponents, PageRank, SingleSourceShortestPath};

    fn arbitrary_graph() -> impl Strategy<Value = ebv_graph::Graph> {
        proptest::collection::vec((0u64..30, 0u64..30), 1..150).prop_filter_map(
            "graphs need at least one non-loop edge",
            |edges| {
                let mut builder = GraphBuilder::directed();
                builder.extend_edges(edges);
                builder.build().ok()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// CC on the BSP engine equals the union-find reference for every
        /// partitioner and arbitrary graphs.
        #[test]
        fn cc_equals_reference(graph in arbitrary_graph(), p in 1usize..5) {
            prop_assume!(p <= graph.num_edges());
            let expected = cc_reference(&graph);
            for partitioner in paper_partitioners() {
                let partition = partitioner.partition(&graph, p).unwrap();
                let dg = DistributedGraph::build(&graph, &partition).unwrap();
                let outcome = BspEngine::sequential().run(&dg, &ConnectedComponents::new()).unwrap();
                prop_assert_eq!(&outcome.values, &expected, "{}", partitioner.name());
            }
        }

        /// SSSP on the BSP engine equals the BFS reference for every
        /// partitioner and arbitrary graphs.
        #[test]
        fn sssp_equals_reference(graph in arbitrary_graph(), p in 1usize..5, source in 0u64..30) {
            prop_assume!(p <= graph.num_edges());
            prop_assume!((source as usize) < graph.num_vertices());
            let expected = sssp_reference(&graph, VertexId::new(source));
            for partitioner in paper_partitioners() {
                let partition = partitioner.partition(&graph, p).unwrap();
                let dg = DistributedGraph::build(&graph, &partition).unwrap();
                let outcome = BspEngine::sequential()
                    .run(&dg, &SingleSourceShortestPath::new(VertexId::new(source)))
                    .unwrap();
                prop_assert_eq!(&outcome.values, &expected, "{}", partitioner.name());
            }
        }

        /// PageRank on the BSP engine matches the power-iteration reference
        /// to floating-point tolerance for every partitioner.
        #[test]
        fn pagerank_equals_reference(graph in arbitrary_graph(), p in 1usize..4) {
            prop_assume!(p <= graph.num_edges());
            let expected = pagerank_reference(&graph, 6, 0.85);
            for partitioner in paper_partitioners() {
                let partition = partitioner.partition(&graph, p).unwrap();
                let dg = DistributedGraph::build(&graph, &partition).unwrap();
                let program = PageRank::new(&graph, 6);
                let outcome = BspEngine::sequential().run(&dg, &program).unwrap();
                let got = ranks(&outcome.values);
                for (a, b) in got.iter().zip(&expected) {
                    prop_assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", partitioner.name());
                }
            }
        }
    }
}
