//! Breadth-First Search in the subgraph-centric model.
//!
//! BFS is not part of the paper's evaluation triple (CC, PR, SSSP) but is the
//! canonical fourth workload of distributed graph benchmarks; it is included
//! to widen the application coverage of the reproduction.

use ebv_bsp::{Subgraph, SubgraphContext, SubgraphProgram};
use ebv_graph::VertexId;

/// Depth value used by [`BreadthFirstSearch`] for unvisited vertices.
pub const UNVISITED: u64 = u64::MAX;

/// Subgraph-centric BFS over directed edges: computes the hop depth of every
/// vertex reachable from the root. Treats the graph exactly like
/// [`SingleSourceShortestPath`](crate::SingleSourceShortestPath) with unit
/// weights but terminates level by level, so its superstep count equals the
/// number of BFS frontiers crossing subgraph boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreadthFirstSearch {
    root: VertexId,
}

impl BreadthFirstSearch {
    /// Creates a BFS program rooted at `root`.
    pub fn new(root: VertexId) -> Self {
        BreadthFirstSearch { root }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl SubgraphProgram for BreadthFirstSearch {
    type Value = u64;
    type Message = u64;

    fn name(&self) -> String {
        "BFS".to_string()
    }

    fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
        if vertex == self.root {
            0
        } else {
            UNVISITED
        }
    }

    fn run_superstep(&self, ctx: &mut SubgraphContext<'_, u64, u64>, _superstep: usize) -> usize {
        let sg = ctx.subgraph();
        let n = sg.num_vertices();
        let mut changed = vec![false; n];

        for (local, was_changed) in changed.iter_mut().enumerate() {
            if let Some(min) = ctx.messages(local).iter().copied().min() {
                if min < *ctx.value(local) {
                    ctx.set_value(local, min);
                    *was_changed = true;
                }
            }
        }

        // Local BFS expansion to a fixpoint within the subgraph, streaming
        // each vertex's CSR neighbour slice.
        loop {
            let mut any = false;
            for local in 0..n {
                let depth = *ctx.value(local);
                if depth == UNVISITED {
                    continue;
                }
                for &neighbor in sg.out_neighbors(local) {
                    let neighbor = neighbor as usize;
                    ctx.add_work(1);
                    if depth + 1 < *ctx.value(neighbor) {
                        ctx.set_value(neighbor, depth + 1);
                        changed[neighbor] = true;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }

        let mut updates = 0usize;
        for (local, &was_changed) in changed.iter().enumerate() {
            if was_changed {
                updates += 1;
                let depth = *ctx.value(local);
                ctx.send_to_replicas(local, depth);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sssp_reference;
    use ebv_bsp::{BspEngine, DistributedGraph};
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};
    use ebv_partition::{EbvPartitioner, Partitioner};

    #[test]
    fn bfs_depth_equals_unit_weight_shortest_path() {
        let graph = RmatGenerator::new(8, 6).with_seed(11).generate().unwrap();
        let expected = sssp_reference(&graph, VertexId::new(0));
        let partition = EbvPartitioner::new().partition(&graph, 4).unwrap();
        let dg = DistributedGraph::build(&graph, &partition).unwrap();
        let outcome = BspEngine::sequential()
            .run(&dg, &BreadthFirstSearch::new(VertexId::new(0)))
            .unwrap();
        assert_eq!(outcome.values, expected);
    }

    #[test]
    fn path_graph_depths_are_positions() {
        let graph = named::path_graph(6).unwrap();
        let partition = EbvPartitioner::new().partition(&graph, 2).unwrap();
        let dg = DistributedGraph::build(&graph, &partition).unwrap();
        let outcome = BspEngine::sequential()
            .run(&dg, &BreadthFirstSearch::new(VertexId::new(0)))
            .unwrap();
        assert_eq!(outcome.values, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(
            BreadthFirstSearch::new(VertexId::new(0)).root(),
            VertexId::new(0)
        );
    }
}
