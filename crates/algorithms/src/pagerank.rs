//! PageRank in the subgraph-centric model.

use ebv_bsp::{Subgraph, SubgraphContext, SubgraphProgram};
use ebv_graph::{Graph, VertexId};

/// Per-vertex PageRank state: the current rank plus the partial contribution
/// sum accumulated locally during the gather half-step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankValue {
    /// Current rank of the vertex.
    pub rank: f64,
    /// Partial Σ rank(u)/outdeg(u) accumulated from local in-edges.
    pub partial: f64,
}

/// Subgraph-centric PageRank, one of the three evaluation applications of
/// the paper.
///
/// Each PageRank iteration takes two supersteps, mirroring the master/mirror
/// protocol of subgraph-centric frameworks:
///
/// 1. **gather** — every worker scans its local edges and accumulates
///    `rank(u) / outdeg(u)` into the partial sum of the target vertex;
///    mirrors then send their partials to the vertex's master (one message
///    per mirror).
/// 2. **apply + scatter** — the master folds the incoming partials with its
///    own, applies the PageRank update
///    `rank = (1 − d)/|V| + d · Σ partials`, and broadcasts the new rank to
///    its mirrors (one message per mirror).
///
/// The per-iteration message count is therefore `2 · (Σ_i |V_i| − |V|)` —
/// directly proportional to the replication factor, which is exactly the
/// relationship between Table III and Table IV that the paper points out.
///
/// Dangling vertices (out-degree 0) simply stop propagating their mass, the
/// same convention used by the sequential reference implementation in
/// [`crate::reference::pagerank_reference`], so the two agree to floating
/// point tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRank {
    damping: f64,
    iterations: usize,
    num_vertices: usize,
    out_degrees: Vec<u64>,
}

impl PageRank {
    /// Creates a PageRank program for `graph` with the given number of
    /// iterations and the conventional damping factor 0.85.
    ///
    /// The program captures the graph's global out-degree table: a replica
    /// only knows its local edges, but the rank contribution of a vertex is
    /// defined by its *global* out-degree.
    pub fn new(graph: &Graph, iterations: usize) -> Self {
        PageRank {
            damping: 0.85,
            iterations,
            num_vertices: graph.num_vertices(),
            out_degrees: graph
                .vertices()
                .map(|v| graph.out_degree(v) as u64)
                .collect(),
        }
    }

    /// Overrides the damping factor (default 0.85).
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.damping = damping;
        self
    }

    /// The configured number of PageRank iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The configured damping factor.
    pub fn damping(&self) -> f64 {
        self.damping
    }
}

impl SubgraphProgram for PageRank {
    type Value = PageRankValue;
    type Message = f64;

    fn name(&self) -> String {
        "PageRank".to_string()
    }

    fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> PageRankValue {
        PageRankValue {
            rank: 1.0 / self.num_vertices as f64,
            partial: 0.0,
        }
    }

    fn run_superstep(
        &self,
        ctx: &mut SubgraphContext<'_, PageRankValue, f64>,
        superstep: usize,
    ) -> usize {
        pagerank_superstep(
            self.damping,
            self.num_vertices,
            &self.out_degrees,
            ctx,
            superstep,
            false,
        )
    }

    fn max_supersteps(&self) -> usize {
        2 * self.iterations
    }

    fn halt_on_quiescence(&self) -> bool {
        false
    }
}

/// One gather/scatter superstep of the master/mirror PageRank protocol,
/// shared by [`PageRank`] and the warm-start variant
/// [`crate::IncrementalPageRank`].
///
/// With `gate_stable_messages` set, two bit-exact message eliminations are
/// applied: a mirror whose partial sum is exactly `0.0` skips the gather
/// message (the master's fold sums incoming partials, so dropping exact
/// zeros cannot change it), and a master whose new rank is bit-identical to
/// its previous rank skips the scatter broadcast (mirrors already hold that
/// rank). Both gates leave every rank bit-identical to the ungated run;
/// they only reduce traffic in converged regions, which is where a
/// warm-started execution spends most of its supersteps. The cold
/// [`PageRank`] keeps them off so its message counts remain the paper's
/// `2 · (Σ_i |V_i| − |V|)` per iteration.
pub(crate) fn pagerank_superstep(
    damping: f64,
    num_vertices: usize,
    out_degrees: &[u64],
    ctx: &mut SubgraphContext<'_, PageRankValue, f64>,
    superstep: usize,
    gate_stable_messages: bool,
) -> usize {
    let n = ctx.subgraph().num_vertices();
    let gather_phase = superstep.is_multiple_of(2);
    let mut updates = 0usize;

    if gather_phase {
        // Mirrors first adopt the rank broadcast by the master at the end
        // of the previous iteration.
        for local in 0..n {
            if let Some(&rank) = ctx.messages(local).last() {
                let mut value = *ctx.value(local);
                value.rank = rank;
                ctx.set_value(local, value);
            }
        }
        // Accumulate local contributions along every *owned* local edge
        // (edge-cut distributions replicate crossing edges; only the
        // source owner's copy contributes so each edge counts once).
        let mut partials = vec![0.0f64; n];
        for edge_index in 0..ctx.subgraph().num_edges() {
            if !ctx.subgraph().owns_edge(edge_index) {
                continue;
            }
            let edge = ctx.subgraph().edges()[edge_index];
            let out_degree = out_degrees[edge.src.index()];
            if out_degree == 0 {
                continue;
            }
            let (Some(src_local), Some(dst_local)) = (
                ctx.subgraph().local_index_of(edge.src),
                ctx.subgraph().local_index_of(edge.dst),
            ) else {
                continue;
            };
            ctx.add_work(1);
            let contribution = ctx.value(src_local).rank / out_degree as f64;
            partials[dst_local] += contribution;
        }
        for (local, partial) in partials.into_iter().enumerate() {
            let mut value = *ctx.value(local);
            value.partial = partial;
            ctx.set_value(local, value);
            updates += 1;
            // Mirrors ship their partial to the master replica (a gated
            // mirror with an exactly-zero partial stays silent).
            if !ctx.subgraph().is_master(local) {
                let gated = gate_stable_messages && partial == 0.0;
                if !gated {
                    ctx.send_to_master(local, partial);
                }
            }
        }
    } else {
        // Apply phase: masters fold incoming partials and broadcast the
        // new rank to their mirrors.
        for local in 0..n {
            if !ctx.subgraph().is_master(local) {
                continue;
            }
            let incoming: f64 = ctx.messages(local).iter().sum();
            let mut value = *ctx.value(local);
            let previous_rank = value.rank;
            let total = value.partial + incoming;
            value.rank = (1.0 - damping) / num_vertices as f64 + damping * total;
            value.partial = 0.0;
            ctx.set_value(local, value);
            ctx.add_work(1);
            updates += 1;
            let rank = value.rank;
            if !(gate_stable_messages && rank.to_bits() == previous_rank.to_bits()) {
                ctx.send_to_mirrors(local, rank);
            }
        }
    }
    updates
}

/// Extracts the plain rank vector from a PageRank outcome.
pub fn ranks(values: &[PageRankValue]) -> Vec<f64> {
    values.iter().map(|v| v.rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank_reference;
    use ebv_bsp::{BspEngine, DistributedGraph};
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};
    use ebv_partition::{paper_partitioners, EbvPartitioner, Partitioner};

    fn run_pagerank(
        graph: &Graph,
        partitioner: &dyn Partitioner,
        p: usize,
        iters: usize,
    ) -> Vec<f64> {
        let partition = partitioner.partition(graph, p).unwrap();
        let dg = DistributedGraph::build(graph, &partition).unwrap();
        let program = PageRank::new(graph, iters);
        let outcome = BspEngine::sequential().run(&dg, &program).unwrap();
        ranks(&outcome.values)
    }

    fn assert_close(a: &[f64], b: &[f64], tolerance: f64, context: &str) {
        assert_eq!(a.len(), b.len(), "{context}");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tolerance,
                "{context}: rank of vertex {i} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_on_small_graphs() {
        for graph in [named::figure1_graph(), named::small_social_graph()] {
            let expected = pagerank_reference(&graph, 10, 0.85);
            for partitioner in paper_partitioners() {
                let got = run_pagerank(&graph, partitioner.as_ref(), 3, 10);
                assert_close(&got, &expected, 1e-9, &partitioner.name());
            }
        }
    }

    #[test]
    fn matches_reference_on_power_law_graph() {
        let graph = RmatGenerator::new(8, 6).with_seed(9).generate().unwrap();
        let expected = pagerank_reference(&graph, 8, 0.85);
        for partitioner in paper_partitioners() {
            let got = run_pagerank(&graph, partitioner.as_ref(), 4, 8);
            assert_close(&got, &expected, 1e-9, &partitioner.name());
        }
    }

    #[test]
    fn hub_ranks_highest_in_a_star() {
        let graph = named::star_graph(20).unwrap();
        let got = run_pagerank(&graph, &EbvPartitioner::new(), 4, 15);
        let hub = got[0];
        for &leaf_rank in &got[1..=20] {
            assert!(hub > leaf_rank, "hub {hub} vs leaf {leaf_rank}");
        }
    }

    #[test]
    fn iteration_and_damping_accessors() {
        let graph = named::figure1_graph();
        let pr = PageRank::new(&graph, 5).with_damping(0.9);
        assert_eq!(pr.iterations(), 5);
        assert!((pr.damping() - 0.9).abs() < 1e-12);
        assert_eq!(pr.max_supersteps(), 10);
        assert!(!pr.halt_on_quiescence());
    }
}
