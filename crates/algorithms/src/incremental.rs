//! Warm-start (incremental) variants of the evaluation applications.
//!
//! A mutation epoch (`ebv_bsp::DistributedGraph::apply_mutations`) usually
//! disturbs a tiny fraction of the graph, yet re-running CC or PageRank from
//! scratch pays the full cold-start cost every time. The programs here are
//! designed for [`BspEngine::run_warm`](ebv_bsp::BspEngine::run_warm): they
//! seed every vertex from the previous epoch's outcome and re-activate only
//! the region the mutations disturbed.
//!
//! * [`IncrementalConnectedComponents`] converges to labels **bit-identical**
//!   to a cold [`crate::ConnectedComponents`] run: the final label of every
//!   vertex is the minimum vertex id of its component, a pure function of
//!   the graph, so a correct incremental fixpoint cannot differ. Insertions
//!   re-activate only the inserted endpoints; deletions conservatively reset
//!   the components they touched (a deletion may split a component, and
//!   min-label propagation cannot *raise* stale labels).
//! * [`IncrementalPageRank`] continues the power iteration from the previous
//!   epoch's ranks. Rank mass propagates globally, so instead of a frontier
//!   the win is iteration count: a warm start near the fixpoint needs far
//!   fewer iterations than a cold uniform start to reach the same tolerance,
//!   and bit-exact message gating suppresses replica traffic in regions that
//!   have already re-converged.

use std::collections::HashSet;

use ebv_bsp::{DistributedGraph, MutationBatch, Subgraph, SubgraphContext, SubgraphProgram};
use ebv_graph::VertexId;

use crate::pagerank::{pagerank_superstep, PageRankValue};

/// Warm-start Connected Components (see the module-level discussion at
/// the top of this file's source for the full design).
///
/// Build one per epoch from the previous epoch's labels and the applied
/// [`MutationBatch`] (or [`absorb`](Self::absorb) several batches applied
/// since those labels were produced), then execute with
/// [`BspEngine::run_warm`](ebv_bsp::BspEngine::run_warm) passing the same
/// prior labels.
///
/// # Examples
///
/// ```
/// use ebv_algorithms::{ConnectedComponents, IncrementalConnectedComponents};
/// use ebv_bsp::{BspEngine, DistributedGraph, MutationBatch};
/// use ebv_graph::Edge;
/// use ebv_partition::PartitionId;
///
/// # fn main() -> Result<(), ebv_bsp::BspError> {
/// let mut distributed = DistributedGraph::build_streaming(
///     2,
///     None,
///     vec![
///         (Edge::from((0u64, 1u64)), PartitionId::new(0)),
///         (Edge::from((2u64, 3u64)), PartitionId::new(1)),
///     ],
/// )?;
/// let engine = BspEngine::sequential();
/// let cold = engine.run(&distributed, &ConnectedComponents::new())?;
///
/// let mut batch = MutationBatch::new();
/// batch.record_insert(Edge::from((1u64, 2u64)), PartitionId::new(0));
/// distributed.apply_mutations(&batch)?;
///
/// let program = IncrementalConnectedComponents::from_batch(&cold.values, &batch);
/// let warm = engine.run_warm(&distributed, &program, &cold.values)?;
/// assert_eq!(warm.values, vec![0, 0, 0, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalConnectedComponents {
    /// Prior labels whose components must be recomputed from scratch (a
    /// deletion touched them; the split cannot be repaired by min-labels).
    dirty: HashSet<u64>,
    /// Raw ids of vertices incident to inserted edges — the activation
    /// frontier of the first superstep.
    seeds: HashSet<u64>,
}

impl IncrementalConnectedComponents {
    /// Creates a pure warm restart: nothing is dirty, nothing is seeded, so
    /// the run converges immediately when the prior labels are still valid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the program for one mutation batch applied on top of the
    /// graph that produced `prior`.
    pub fn from_batch(prior: &[u64], batch: &MutationBatch) -> Self {
        let mut program = Self::new();
        program.absorb(prior, batch);
        program
    }

    /// Folds one more mutation batch into the dirty/seed sets. Every batch
    /// applied since `prior` was computed must be absorbed (in any order)
    /// before the warm run.
    pub fn absorb(&mut self, prior: &[u64], batch: &MutationBatch) {
        for &(edge, _) in batch.removed() {
            for v in [edge.src, edge.dst] {
                match prior.get(v.index()) {
                    // The whole prior component of the endpoint may split.
                    Some(&label) => {
                        self.dirty.insert(label);
                    }
                    // The endpoint postdates the prior labels; it starts
                    // from its own id anyway, but must still propagate.
                    None => {
                        self.seeds.insert(v.raw());
                    }
                }
            }
        }
        for &(edge, _) in batch.added() {
            self.seeds.insert(edge.src.raw());
            self.seeds.insert(edge.dst.raw());
        }
    }

    /// Number of prior component labels scheduled for recomputation.
    pub fn dirty_components(&self) -> usize {
        self.dirty.len()
    }

    /// Number of seed vertices activated in the first superstep.
    pub fn seed_vertices(&self) -> usize {
        self.seeds.len()
    }
}

impl SubgraphProgram for IncrementalConnectedComponents {
    type Value = u64;
    type Message = u64;

    fn name(&self) -> String {
        "CC-warm".to_string()
    }

    fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
        vertex.raw()
    }

    fn warm_value(&self, vertex: VertexId, prior: &u64, _subgraph: &Subgraph) -> u64 {
        if self.dirty.contains(prior) {
            vertex.raw()
        } else {
            *prior
        }
    }

    fn run_superstep(&self, ctx: &mut SubgraphContext<'_, u64, u64>, superstep: usize) -> usize {
        let n = ctx.subgraph().num_vertices();
        let mut changed = vec![false; n];
        let mut in_queue = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();

        // Fold replica labels received during the previous communication
        // stage; receivers join the propagation frontier.
        for local in 0..n {
            if let Some(min) = ctx.messages(local).iter().copied().min() {
                if min < *ctx.value(local) {
                    ctx.set_value(local, min);
                    changed[local] = true;
                    if !in_queue[local] {
                        in_queue[local] = true;
                        queue.push(local);
                    }
                }
            }
        }

        // First superstep: activate the disturbed region only — seed
        // vertices (incident to inserted edges) and every vertex whose warm
        // label is its own id (reset members of dirty components, new
        // vertices, and component minima, whose re-scan is free of updates).
        if superstep == 0 {
            for (local, queued) in in_queue.iter_mut().enumerate() {
                if *queued {
                    continue;
                }
                let v = ctx.subgraph().vertex_at(local);
                if *ctx.value(local) == v.raw() || self.seeds.contains(&v.raw()) {
                    *queued = true;
                    queue.push(local);
                }
            }
        }

        // Worklist label propagation to the local fixpoint, touching only
        // edges incident to the active frontier (undirected: labels flow
        // both ways along each edge).
        while let Some(u) = queue.pop() {
            in_queue[u] = false;
            for direction in 0..2 {
                let degree = if direction == 0 {
                    ctx.subgraph().out_neighbors(u).len()
                } else {
                    ctx.subgraph().in_neighbors(u).len()
                };
                for idx in 0..degree {
                    let w = if direction == 0 {
                        ctx.subgraph().out_neighbors(u)[idx]
                    } else {
                        ctx.subgraph().in_neighbors(u)[idx]
                    };
                    ctx.add_work(1);
                    let a = *ctx.value(u);
                    let b = *ctx.value(w);
                    if a < b {
                        ctx.set_value(w, a);
                        changed[w] = true;
                        if !in_queue[w] {
                            in_queue[w] = true;
                            queue.push(w);
                        }
                    } else if b < a {
                        ctx.set_value(u, b);
                        changed[u] = true;
                        if !in_queue[u] {
                            in_queue[u] = true;
                            queue.push(u);
                        }
                    }
                }
            }
        }

        // Ship changed boundary labels to the other replicas.
        let mut updates = 0usize;
        for (local, &was_changed) in changed.iter().enumerate() {
            if was_changed {
                updates += 1;
                let label = *ctx.value(local);
                ctx.send_to_replicas(local, label);
            }
        }
        updates
    }
}

/// Warm-start PageRank (see the module-level discussion at the top of
/// this file's source for the full design).
///
/// Unlike [`crate::PageRank`] the program is constructed from the (possibly
/// mutated) [`DistributedGraph`] itself — the dynamic path never
/// materializes a global [`ebv_graph::Graph`] — by counting owned local
/// edges, which cover every edge exactly once. Seed it from the previous
/// epoch's ranks via
/// [`BspEngine::run_warm`](ebv_bsp::BspEngine::run_warm); a handful of warm
/// iterations reaches the tolerance a cold uniform start needs several times
/// as many iterations for, and the bit-exact message gating of the shared
/// kernel suppresses replica traffic wherever ranks have stopped moving.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalPageRank {
    damping: f64,
    iterations: usize,
    num_vertices: usize,
    out_degrees: Vec<u64>,
}

impl IncrementalPageRank {
    /// Creates the program for `distributed` with the given number of warm
    /// iterations and the conventional damping factor 0.85.
    pub fn from_distributed(distributed: &DistributedGraph, iterations: usize) -> Self {
        let mut out_degrees = vec![0u64; distributed.num_vertices()];
        for sg in distributed.subgraphs() {
            for (edge_index, edge) in sg.edges().iter().enumerate() {
                if sg.owns_edge(edge_index) {
                    out_degrees[edge.src.index()] += 1;
                }
            }
        }
        IncrementalPageRank {
            damping: 0.85,
            iterations,
            num_vertices: distributed.num_vertices(),
            out_degrees,
        }
    }

    /// Overrides the damping factor (default 0.85).
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.damping = damping;
        self
    }

    /// The configured number of warm iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The configured damping factor.
    pub fn damping(&self) -> f64 {
        self.damping
    }
}

impl SubgraphProgram for IncrementalPageRank {
    type Value = PageRankValue;
    type Message = f64;

    fn name(&self) -> String {
        "PageRank-warm".to_string()
    }

    fn initial_value(&self, _vertex: VertexId, _subgraph: &Subgraph) -> PageRankValue {
        PageRankValue {
            rank: 1.0 / self.num_vertices as f64,
            partial: 0.0,
        }
    }

    fn warm_value(
        &self,
        _vertex: VertexId,
        prior: &PageRankValue,
        _subgraph: &Subgraph,
    ) -> PageRankValue {
        PageRankValue {
            rank: prior.rank,
            partial: 0.0,
        }
    }

    fn run_superstep(
        &self,
        ctx: &mut SubgraphContext<'_, PageRankValue, f64>,
        superstep: usize,
    ) -> usize {
        pagerank_superstep(
            self.damping,
            self.num_vertices,
            &self.out_degrees,
            ctx,
            superstep,
            true,
        )
    }

    fn max_supersteps(&self) -> usize {
        2 * self.iterations
    }

    fn halt_on_quiescence(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::cc_reference;
    use crate::{ranks, ConnectedComponents, PageRank};
    use ebv_bsp::{BspEngine, DistributedGraph, MutationBatch};
    use ebv_graph::{Edge, Graph};
    use ebv_partition::{EbvPartitioner, PartitionId, Partitioner};

    fn distribute(graph: &Graph, p: usize) -> (DistributedGraph, Vec<(Edge, PartitionId)>) {
        let partition = EbvPartitioner::new().partition(graph, p).unwrap();
        let vc = partition.as_vertex_cut().unwrap();
        let assigned: Vec<(Edge, PartitionId)> = graph
            .edges()
            .iter()
            .copied()
            .zip(vc.assignment().iter().copied())
            .collect();
        (
            DistributedGraph::build(graph, &partition).unwrap(),
            assigned,
        )
    }

    #[test]
    fn warm_cc_handles_inserts_deletes_and_splits() {
        let graph = ebv_graph::generators::named::small_social_graph();
        let (mut distributed, assigned) = distribute(&graph, 3);
        let engine = BspEngine::sequential();
        let mut labels = engine
            .run(&distributed, &ConnectedComponents::new())
            .unwrap()
            .values;
        assert_eq!(labels, cc_reference(&graph));

        // Three epochs: deletions that may split, insertions that merge,
        // and a mixed batch growing the universe.
        let mut survivors = assigned.clone();
        let batches: Vec<Vec<(bool, Edge, PartitionId)>> = vec![
            survivors
                .iter()
                .step_by(4)
                .map(|&(e, p)| (false, e, p))
                .collect(),
            vec![
                (true, Edge::from((0u64, 13u64)), PartitionId::new(1)),
                (true, Edge::from((2u64, 7u64)), PartitionId::new(2)),
            ],
            vec![
                (false, survivors[1].0, survivors[1].1),
                (true, Edge::from((5u64, 20u64)), PartitionId::new(0)),
            ],
        ];
        for ops in batches {
            let mut batch = MutationBatch::new();
            for &(is_insert, e, p) in &ops {
                if is_insert {
                    batch.record_insert(e, p);
                    survivors.push((e, p));
                } else {
                    batch.record_delete(e, p);
                    let pos = survivors.iter().rposition(|&pair| pair == (e, p)).unwrap();
                    survivors.remove(pos);
                }
            }
            let program = IncrementalConnectedComponents::from_batch(&labels, &batch);
            distributed.apply_mutations(&batch).unwrap();
            let warm = engine.run_warm(&distributed, &program, &labels).unwrap();
            let cold = engine
                .run(&distributed, &ConnectedComponents::new())
                .unwrap();
            assert_eq!(warm.values, cold.values, "warm CC must be bit-identical");
            labels = warm.values;
        }
    }

    #[test]
    fn warm_cc_on_an_untouched_graph_converges_immediately() {
        let graph = ebv_graph::generators::named::two_triangles();
        let (distributed, _) = distribute(&graph, 2);
        let engine = BspEngine::sequential();
        let cold = engine
            .run(&distributed, &ConnectedComponents::new())
            .unwrap();
        let program = IncrementalConnectedComponents::new();
        assert_eq!(program.dirty_components(), 0);
        assert_eq!(program.seed_vertices(), 0);
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.supersteps, 1, "nothing to do: one quiescent superstep");
        assert_eq!(warm.stats.total_messages(), 0);
    }

    #[test]
    fn warm_pagerank_matches_cold_to_tolerance_and_gates_messages() {
        let graph = ebv_graph::generators::named::small_social_graph();
        let (mut distributed, _) = distribute(&graph, 3);
        let engine = BspEngine::sequential();
        let cold = engine
            .run(&distributed, &PageRank::new(&graph, 40))
            .unwrap();

        // Mutate lightly, then warm-start from the stale ranks.
        let mut batch = MutationBatch::new();
        batch.record_insert(Edge::from((0u64, 12u64)), PartitionId::new(1));
        distributed.apply_mutations(&batch).unwrap();
        let program = IncrementalPageRank::from_distributed(&distributed, 40);
        let warm = engine
            .run_warm(&distributed, &program, &cold.values)
            .unwrap();

        // Cold reference on the mutated distribution with the same kernel
        // and iteration count (`run` seeds the uniform initial value).
        let cold_after = engine.run(&distributed, &program).unwrap();
        for (a, b) in ranks(&warm.values).iter().zip(ranks(&cold_after.values)) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // Near the fixpoint the bit-exact gating suppresses traffic: the
        // warm run cannot send more than the cold run of the same kernel.
        assert!(warm.stats.total_messages() <= cold_after.stats.total_messages());
    }

    #[test]
    fn incremental_pagerank_accessors() {
        let distributed = DistributedGraph::build_streaming(
            2,
            None,
            vec![(Edge::from((0u64, 1u64)), PartitionId::new(0))],
        )
        .unwrap();
        let program = IncrementalPageRank::from_distributed(&distributed, 4).with_damping(0.9);
        assert_eq!(program.iterations(), 4);
        assert!((program.damping() - 0.9).abs() < 1e-12);
        assert_eq!(program.max_supersteps(), 8);
        assert!(!program.halt_on_quiescence());
        assert_eq!(program.name(), "PageRank-warm");
    }
}
