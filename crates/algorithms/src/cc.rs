//! Connected Components in the subgraph-centric model.

use ebv_bsp::{Subgraph, SubgraphContext, SubgraphProgram};
use ebv_graph::VertexId;

/// Subgraph-centric Connected Components (CC), one of the three evaluation
/// applications of the paper.
///
/// Each vertex carries a component label initialized to its own identifier.
/// In every superstep each worker first folds the labels received from other
/// replicas, then runs sequential label propagation over its entire subgraph
/// to a local fixpoint (this is the "think like a graph" advantage: all
/// intra-subgraph convergence happens without any network traffic), and
/// finally sends the labels of boundary vertices that changed to their other
/// replicas. Edge direction is ignored, as is conventional for CC.
///
/// # Examples
///
/// ```
/// use ebv_algorithms::ConnectedComponents;
/// use ebv_bsp::{BspEngine, DistributedGraph};
/// use ebv_graph::generators::named;
/// use ebv_partition::{EbvPartitioner, Partitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let graph = named::two_triangles();
/// let partition = EbvPartitioner::new().partition(&graph, 2)?;
/// let distributed = DistributedGraph::build(&graph, &partition)?;
/// let outcome = BspEngine::sequential().run(&distributed, &ConnectedComponents::new())?;
/// assert_eq!(outcome.values, vec![0, 0, 0, 3, 3, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectedComponents {
    _private: (),
}

impl ConnectedComponents {
    /// Creates the CC program.
    pub fn new() -> Self {
        ConnectedComponents { _private: () }
    }
}

impl SubgraphProgram for ConnectedComponents {
    type Value = u64;
    type Message = u64;

    fn name(&self) -> String {
        "CC".to_string()
    }

    fn initial_value(&self, vertex: VertexId, _subgraph: &Subgraph) -> u64 {
        vertex.raw()
    }

    fn run_superstep(&self, ctx: &mut SubgraphContext<'_, u64, u64>, _superstep: usize) -> usize {
        let sg = ctx.subgraph();
        let n = sg.num_vertices();
        let mut changed = vec![false; n];

        // Fold replica labels received during the previous communication
        // stage.
        for (local, was_changed) in changed.iter_mut().enumerate() {
            if let Some(min) = ctx.messages(local).iter().copied().min() {
                if min < *ctx.value(local) {
                    ctx.set_value(local, min);
                    *was_changed = true;
                }
            }
        }

        // Sequential label propagation over the whole subgraph until a local
        // fixpoint (undirected: labels flow both ways along each edge),
        // streaming each vertex's CSR neighbour slice.
        loop {
            let mut any = false;
            for local in 0..n {
                for &neighbor in sg.out_neighbors(local) {
                    let neighbor = neighbor as usize;
                    ctx.add_work(1);
                    let a = *ctx.value(local);
                    let b = *ctx.value(neighbor);
                    if a < b {
                        ctx.set_value(neighbor, a);
                        changed[neighbor] = true;
                        any = true;
                    } else if b < a {
                        ctx.set_value(local, b);
                        changed[local] = true;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }

        // Ship changed boundary labels to the other replicas.
        let mut updates = 0usize;
        for (local, &was_changed) in changed.iter().enumerate() {
            if was_changed {
                updates += 1;
                let label = *ctx.value(local);
                ctx.send_to_replicas(local, label);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::cc_reference;
    use ebv_bsp::{BspEngine, DistributedGraph};
    use ebv_graph::generators::{named, GraphGenerator, RmatGenerator};
    use ebv_graph::Graph;
    use ebv_partition::{paper_partitioners, Partitioner};

    fn run_cc(graph: &Graph, partitioner: &dyn Partitioner, p: usize) -> Vec<u64> {
        let partition = partitioner.partition(graph, p).unwrap();
        let dg = DistributedGraph::build(graph, &partition).unwrap();
        BspEngine::sequential()
            .run(&dg, &ConnectedComponents::new())
            .unwrap()
            .values
    }

    #[test]
    fn matches_reference_on_small_graphs() {
        for graph in [
            named::two_triangles(),
            named::figure1_graph(),
            named::small_social_graph(),
        ] {
            let expected = cc_reference(&graph);
            for partitioner in paper_partitioners() {
                let got = run_cc(&graph, partitioner.as_ref(), 2);
                assert_eq!(got, expected, "{}", partitioner.name());
            }
        }
    }

    #[test]
    fn matches_reference_on_power_law_graph_with_every_partitioner() {
        let graph = RmatGenerator::new(8, 6).with_seed(3).generate().unwrap();
        let expected = cc_reference(&graph);
        for partitioner in paper_partitioners() {
            let got = run_cc(&graph, partitioner.as_ref(), 4);
            assert_eq!(got, expected, "{}", partitioner.name());
        }
    }

    #[test]
    fn disconnected_components_get_distinct_labels() {
        let graph = named::two_triangles();
        let labels = run_cc(&graph, &ebv_partition::EbvPartitioner::new(), 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }
}
